//! Chaos end-to-end suite (ISSUE 6 acceptance): spawn the real `sigrule`
//! binary — compiled with `--features faults` — with a `SIGRULE_FAULTS`
//! plan in its environment, torment it over TCP, and assert the fault
//! contract:
//!
//! * the server may answer a tormented request with a structured error
//!   (`code` + `error_kind` per the taxonomy in `docs/SERVE.md`), but
//!   every *successful* answer is bit-identical to a clean one-shot
//!   [`Pipeline`] run;
//! * an aborted cache fill leaves the once-cell cold, never partial — a
//!   retry redoes the work and matches bit for bit;
//! * the server never hangs or leaks workers: every test ends in an
//!   acknowledged `shutdown` and a clean process exit.
//!
//! This whole file is compiled out without the `faults` feature; the CI
//! chaos step runs `cargo test -p sigrule_cli --features faults` under a
//! hard `timeout`, so a hang fails instead of stalling the pipeline.
#![cfg(feature = "faults")]

use sigrule::pipeline::{CorrectionApproach, Pipeline};
use sigrule::ErrorMetric;
use sigrule_server::json::Json;
use sigrule_server::transport::ListenAddr;
use sigrule_server::{ClientStream, RetryPolicy};
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Per-read client timeout: far above the slowest tormented query on the
/// toy fixture, far below any CI job timeout.
const READ_TIMEOUT: Duration = Duration::from_secs(120);

fn fixture() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/retail_toy.basket")
}

/// A spawned `sigrule serve` process with a fault plan in its environment;
/// killed on drop so a failing test never leaks a listener.
struct TormentedProcess {
    child: Child,
    addr: ListenAddr,
}

impl TormentedProcess {
    fn spawn(faults: &str) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_sigrule"))
            .args(["serve", "--listen", "tcp:127.0.0.1:0"])
            .env("SIGRULE_FAULTS", faults)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("binary runs");
        let stdout = child.stdout.as_mut().expect("stdout piped");
        let mut ready = String::new();
        BufReader::new(stdout)
            .read_line(&mut ready)
            .expect("ready line");
        let ready = Json::parse(ready.trim()).expect("ready line is JSON");
        assert_eq!(ready.get("ok").and_then(Json::as_bool), Some(true));
        let bound = ready
            .get("listening")
            .and_then(Json::as_str)
            .expect("ready line carries the bound address");
        let addr = ListenAddr::parse(bound).expect("bound address parses");
        TormentedProcess { child, addr }
    }

    fn connect(&self) -> ClientStream {
        let mut client = ClientStream::connect(&self.addr).expect("connect");
        client
            .set_read_timeout(Some(READ_TIMEOUT))
            .expect("read timeout");
        client
    }

    fn assert_clean_exit(mut self) {
        let status = self.child.wait().expect("serve exits");
        assert!(status.success(), "serve exited with {status:?}");
        std::mem::forget(self);
    }
}

impl Drop for TormentedProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn assert_ok(resp: &Json) -> &Json {
    assert_eq!(
        resp.get("ok").and_then(Json::as_bool),
        Some(true),
        "expected ok: {}",
        resp.render()
    );
    resp
}

/// Asserts a structured `ok:false` answer with the given taxonomy fields.
fn assert_error(resp: &Json, code: &str, kind: &str, context: &str) {
    assert_eq!(
        resp.get("ok").and_then(Json::as_bool),
        Some(false),
        "{context}: expected an error, got {}",
        resp.render()
    );
    assert_eq!(
        resp.get("code").and_then(Json::as_str),
        Some(code),
        "{context}: code in {}",
        resp.render()
    );
    assert_eq!(
        resp.get("error_kind").and_then(Json::as_str),
        Some(kind),
        "{context}: error_kind in {}",
        resp.render()
    );
}

/// The clean one-shot reference every successful tormented answer must
/// match bit for bit.  The test process carries no `SIGRULE_FAULTS`, so
/// its in-process fault points are unarmed.
struct Reference {
    significant: u64,
    n_tests: u64,
    cutoff_bits: u64,
    p_value_bits: Vec<u64>,
}

fn reference(min_sup: usize, permutations: usize, seed: u64) -> Reference {
    let one_shot = Pipeline::new(min_sup)
        .with_correction(CorrectionApproach::Permutation, ErrorMetric::Fwer)
        .with_permutations(permutations)
        .with_seed(seed)
        .run_file(fixture())
        .unwrap();
    let mut rules: Vec<_> = one_shot
        .result
        .significant_rules()
        .into_iter()
        .cloned()
        .collect();
    sigrule::rule::sort_by_significance(&mut rules);
    Reference {
        significant: one_shot.result.n_significant() as u64,
        n_tests: one_shot.result.n_tests as u64,
        cutoff_bits: one_shot.result.p_value_cutoff.unwrap().to_bits(),
        p_value_bits: rules.iter().map(|r| r.p_value.to_bits()).collect(),
    }
}

fn assert_matches_reference(resp: &Json, reference: &Reference, context: &str) {
    assert_eq!(
        resp.get("significant").and_then(Json::as_u64),
        Some(reference.significant),
        "{context}: significant"
    );
    assert_eq!(
        resp.get("hypothesis_tests").and_then(Json::as_u64),
        Some(reference.n_tests),
        "{context}: hypothesis_tests"
    );
    let cutoff = resp
        .get("p_value_cutoff")
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("{context}: cutoff missing in {}", resp.render()));
    assert_eq!(
        cutoff.to_bits(),
        reference.cutoff_bits,
        "{context}: cutoff bits"
    );
    let rules = match resp.get("rules") {
        Some(Json::Array(rules)) => rules,
        other => panic!("{context}: rules should be an array, got {other:?}"),
    };
    assert_eq!(
        rules.len(),
        reference.p_value_bits.len(),
        "{context}: rule count"
    );
    for (i, (rule, expected)) in rules.iter().zip(&reference.p_value_bits).enumerate() {
        let p = rule.get("p_value").and_then(Json::as_f64).unwrap();
        assert_eq!(p.to_bits(), *expected, "{context}: rule {i} p-value bits");
    }
}

fn load_line(path: &std::path::Path) -> String {
    format!(r#"{{"cmd":"load","path":"{}"}}"#, path.to_str().unwrap())
}

fn correct_line(id: &str, extra_fields: &str) -> String {
    format!(
        r#"{{"id":"{id}","cmd":"correct",{extra_fields}"min_sup":8,"correction":"permutation","metric":"fwer","permutations":100,"seed":17,"alpha":0.05,"top":0}}"#
    )
}

/// A handler panic (injected at `req.correct`, first hit only) is trapped
/// into a structured `internal`/`transient` answer on the same
/// connection; the same request sent again succeeds and is bit-identical
/// to the clean one-shot run — the aborted attempt left no partial state.
#[test]
fn injected_panic_is_trapped_as_transient_internal_and_clean_on_retry() {
    let served = TormentedProcess::spawn("req.correct=panic@1");
    let mut client = served.connect();
    assert_ok(&client.request(&load_line(&fixture())).unwrap());

    let tormented = client.request(&correct_line("boom", "")).unwrap();
    assert_error(&tormented, "internal", "transient", "first (panicking) hit");

    // Same connection, same line: hit 2 of the plan is a no-op, and the
    // panic happened before any cache fill — the retry does the cold work.
    let retried = client.request(&correct_line("again", "")).unwrap();
    assert_ok(&retried);
    assert_eq!(
        retried.get("null_cached").and_then(Json::as_bool),
        Some(false),
        "the panicked attempt must not have left a cached null"
    );
    assert_matches_reference(&retried, &reference(8, 100, 17), "retry after panic");

    let bye = client.request(r#"{"cmd":"shutdown"}"#).unwrap();
    assert_ok(&bye);
    served.assert_clean_exit();
}

/// `sigrule client --retries N` absorbs an injected transient fault: the
/// scripted session sees only successes, and the corrected answer is
/// bit-identical to the clean one-shot run.
#[test]
fn client_subcommand_retries_absorb_injected_transient_panic() {
    let served = TormentedProcess::spawn("req.correct=panic@1");
    let script = format!(
        "{}\n{}\n{}\n",
        load_line(&fixture()),
        correct_line("q", ""),
        r#"{"id":"bye","cmd":"shutdown"}"#,
    );
    let mut client = Command::new(env!("CARGO_BIN_EXE_sigrule"))
        .args([
            "client",
            "--connect",
            &served.addr.to_string(),
            "--retries",
            "2",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("client runs");
    client
        .stdin
        .take()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    let output = client.wait_with_output().expect("client exits");
    assert!(
        output.status.success(),
        "client failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let responses: Vec<Json> = String::from_utf8(output.stdout)
        .unwrap()
        .lines()
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("bad response {l:?}: {e}")))
        .collect();
    assert_eq!(responses.len(), 3, "one (post-retry) response per request");
    for resp in &responses {
        assert_ok(resp);
    }
    assert_matches_reference(
        &responses[1],
        &reference(8, 100, 17),
        "retried client answer",
    );
    served.assert_clean_exit();
}

/// Slow permutation chunks plus a short `timeout_ms` return a prompt
/// `deadline_exceeded`; the aborted fill leaves the null cell cold, so an
/// un-deadlined retry redoes the work and matches the clean run bit for
/// bit, and a further repeat is served warm.
#[test]
fn short_deadline_over_slow_chunks_aborts_promptly_and_leaves_cache_cold() {
    let served = TormentedProcess::spawn("perm.chunk=delay:150");
    let mut client = served.connect();
    assert_ok(&client.request(&load_line(&fixture())).unwrap());

    let started = Instant::now();
    let tormented = client
        .request(&correct_line("rushed", r#""timeout_ms":30,"#))
        .unwrap();
    let elapsed = started.elapsed();
    assert_error(&tormented, "deadline_exceeded", "transient", "rushed query");
    // Prompt: chunks between cancellation checks sleep 150ms each, so an
    // abort must beat the full 13-chunk run by a wide margin even on one
    // core.  (The generous bound keeps slow CI machines green.)
    assert!(elapsed < Duration::from_secs(10), "abort took {elapsed:?}");

    // The engine counted the cancellation, and the null cell is cold: the
    // retry recomputes (null_cached:false) and matches bit for bit.
    let stats = client.request(r#"{"cmd":"stats"}"#).unwrap();
    assert_ok(&stats);
    assert!(
        stats
            .get("cancelled_queries")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            >= 1,
        "cancelled_queries should tick: {}",
        stats.render()
    );
    let retried = client.request(&correct_line("patient", "")).unwrap();
    assert_ok(&retried);
    assert_eq!(
        retried.get("null_cached").and_then(Json::as_bool),
        Some(false),
        "aborted fill must leave the null cell cold, not partial"
    );
    let reference = reference(8, 100, 17);
    assert_matches_reference(&retried, &reference, "retry after deadline");

    // And the successful fill is complete: a repeat is warm and identical.
    let warm = client.request(&correct_line("warm", "")).unwrap();
    assert_ok(&warm);
    assert_eq!(warm.get("null_cached").and_then(Json::as_bool), Some(true));
    assert_matches_reference(&warm, &reference, "warm repeat after deadline");

    let bye = client.request(r#"{"cmd":"shutdown"}"#).unwrap();
    assert_ok(&bye);
    served.assert_clean_exit();
}

/// Drops wall-clock fields (summary `load_ms`/`mine_ms`, the comparison
/// table's `time_ms` column) so a distributed and a single-process
/// `correct` report compare bit for bit on everything that matters.
fn strip_timings(json: &mut Json) {
    match json {
        Json::Object(fields) => {
            fields.retain(|(key, _)| key != "load_ms" && key != "mine_ms");
            let time_col = fields
                .iter()
                .find_map(|(key, value)| match (key.as_str(), value) {
                    ("columns", Json::Array(cols)) => {
                        cols.iter().position(|c| c.as_str() == Some("time_ms"))
                    }
                    _ => None,
                });
            for (key, value) in fields.iter_mut() {
                match (key.as_str(), value, time_col) {
                    ("columns", Json::Array(cols), Some(idx)) => {
                        cols.remove(idx);
                    }
                    ("rows", Json::Array(rows), Some(idx)) => {
                        for row in rows {
                            if let Json::Array(cells) = row {
                                cells.remove(idx);
                            }
                        }
                    }
                    (_, value, _) => strip_timings(value),
                }
            }
        }
        Json::Array(items) => {
            for item in items {
                strip_timings(item);
            }
        }
        _ => {}
    }
}

/// A worker that dies mid-shard (injected panic at `shard.run`, first hit
/// only — by then the coordinator has already handed it a range) costs
/// time, never answers: the range is re-dispatched, the merged report is
/// bit-identical to a single-process run, and both workers still drain to
/// a clean `shutdown`.
#[test]
fn worker_killed_mid_shard_redispatches_and_matches_the_clean_run() {
    let dying = TormentedProcess::spawn("shard.run=panic@1");
    let clean = TormentedProcess::spawn("");
    let workers = format!("{},{}", dying.addr, clean.addr);
    let input = fixture();
    let base = [
        "correct",
        "--input",
        input.to_str().unwrap(),
        "--min-sup",
        "8",
        "--permutations",
        "100",
        "--seed",
        "17",
        "--format",
        "json",
    ];
    // The driver runs in-process: this test carries no SIGRULE_FAULTS, so
    // only the spawned workers are tormented.
    let mut argv: Vec<String> = base.iter().map(|s| s.to_string()).collect();
    argv.extend(["--workers".to_string(), workers]);
    let distributed = sigrule_cli::run(&argv);
    assert_eq!(
        distributed.exit_code, 0,
        "distributed run failed: {}",
        distributed.stderr
    );
    assert!(
        distributed.stderr.contains("re-dispatched"),
        "the dying worker's range should be re-dispatched (stderr: {})",
        distributed.stderr
    );

    let plain = sigrule_cli::run(&base.map(String::from));
    assert_eq!(plain.exit_code, 0, "plain run failed: {}", plain.stderr);

    let mut got = Json::parse(distributed.stdout.trim()).expect("distributed report is JSON");
    let mut want = Json::parse(plain.stdout.trim()).expect("plain report is JSON");
    strip_timings(&mut got);
    strip_timings(&mut want);
    assert_eq!(
        got.render(),
        want.render(),
        "distributed answer must be bit-identical to the single-process run"
    );

    for served in [dying, clean] {
        let mut client = served.connect();
        assert_ok(&client.request(r#"{"cmd":"shutdown"}"#).unwrap());
        served.assert_clean_exit();
    }
}

/// An injected read failure surfaces as a *permanent* `io` error — which
/// the retry machinery must NOT retry (a retry would succeed here, since
/// the fault fires on the first hit only, so an `ok` answer means the
/// client retried a permanent error).  A later explicit load succeeds and
/// serves bit-identical answers.
#[test]
fn injected_io_fault_is_permanent_not_retried_and_recoverable() {
    let served = TormentedProcess::spawn("load.read=io@1");
    let mut client = served.connect();

    let tormented = client
        .request_with_retry(&load_line(&fixture()), &RetryPolicy::with_max_retries(3))
        .unwrap();
    assert_error(&tormented, "io", "permanent", "first load");
    assert!(
        tormented
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("")
            .contains("injected IO fault"),
        "error message names the fault: {}",
        tormented.render()
    );

    // The operator fixes the file (here: the plan only fires once) and
    // loads again; everything downstream is clean.
    assert_ok(&client.request(&load_line(&fixture())).unwrap());
    let resp = client.request(&correct_line("q", "")).unwrap();
    assert_ok(&resp);
    assert_matches_reference(&resp, &reference(8, 100, 17), "load after io fault");

    let bye = client.request(r#"{"cmd":"shutdown"}"#).unwrap();
    assert_ok(&bye);
    served.assert_clean_exit();
}
