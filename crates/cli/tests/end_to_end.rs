//! End-to-end acceptance tests for the `sigrule` binary (ISSUE 2):
//! `sigrule mine --correction permutation --format json` on a CSV exported
//! from the synthetic generator must report exactly the significant rule set
//! the library API produces with the same seed.

use sigrule::correction::permutation::PermutationCorrection;
use sigrule::{mine_rules, RuleMiningConfig};
use sigrule_data::loader::{dataset_to_csv, load_csv_file, LoadOptions};
use sigrule_synth::{SyntheticGenerator, SyntheticParams};
use std::path::PathBuf;
use std::process::Command;

/// Writes a synthetic dataset with embedded rules to a temp CSV and returns
/// its path.
fn exported_csv(name: &str, seed: u64) -> PathBuf {
    let params = SyntheticParams::default()
        .with_records(400)
        .with_attributes(8)
        .with_rules(2)
        .with_coverage(80, 100)
        .with_confidence(0.85, 0.95);
    let (dataset, _) = SyntheticGenerator::new(params).unwrap().generate(seed);
    let path = std::env::temp_dir().join(format!("sigrule_e2e_{name}_{}.csv", std::process::id()));
    std::fs::write(&path, dataset_to_csv(&dataset)).unwrap();
    path
}

fn sigrule(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_sigrule"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn mine_permutation_json_matches_library_api() {
    let csv = exported_csv("mine", 42);
    let csv_str = csv.to_str().unwrap();
    let seed = 17; // the CLI default, passed explicitly on the library side

    let output = sigrule(&[
        "mine",
        "--input",
        csv_str,
        "--class",
        "class",
        "--correction",
        "permutation",
        "--permutations",
        "1000",
        "--format",
        "json",
        "--top",
        "0",
    ]);
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).unwrap();

    // The same pipeline through the library API: load with the loader the
    // CLI uses, mine with the CLI's default config (min_sup = 1% of records),
    // correct with the permutation engine at the CLI's default seed.
    let dataset = load_csv_file(&csv, &LoadOptions::default().with_class_name("class")).unwrap();
    let min_sup = (dataset.n_records() / 100).max(2);
    let mined = mine_rules(&dataset, &RuleMiningConfig::new(min_sup));
    let result = PermutationCorrection::new(1000)
        .with_seed(seed)
        .control_fwer(&mined, 0.05);

    assert!(
        result.n_significant() > 0,
        "the embedded rules should survive permutation-based FWER control"
    );
    assert!(stdout.contains(&format!("\"significant\":\"{}\"", result.n_significant())));

    // Every significant rule the library reports must appear in the CLI's
    // JSON rule table with identical statistics.
    let space = mined.item_space();
    for rule in result.significant_rules() {
        let lhs: Vec<String> = rule
            .pattern
            .items()
            .iter()
            .map(|&i| space.describe_item(i))
            .collect();
        let expected_row = format!(
            "[\"{}\",\"{}\",\"{}\",\"{}\",\"{:.4}\",\"{:.6e}\"]",
            lhs.join(" AND "),
            space.class_name(rule.class).unwrap(),
            rule.coverage,
            rule.support,
            rule.confidence(),
            rule.p_value
        );
        assert!(
            stdout.contains(&expected_row),
            "missing rule row {expected_row} in CLI output"
        );
    }

    std::fs::remove_file(&csv).ok();
}

#[test]
fn seed_and_threads_flags_are_deterministic() {
    let csv = exported_csv("seed", 7);
    let csv_str = csv.to_str().unwrap();
    let base = [
        "mine",
        "--input",
        csv_str,
        "--correction",
        "permutation",
        "--permutations",
        "200",
        "--seed",
        "5",
        "--format",
        "json",
    ];

    let default_pool = sigrule(&base);
    assert!(default_pool.status.success());
    let mut pinned_args: Vec<&str> = base.to_vec();
    pinned_args.extend(["--threads", "2"]);
    let pinned = sigrule(&pinned_args);
    assert!(pinned.status.success());
    // The permutation statistics are bit-identical at any thread count, so
    // the whole report matches once the wall-clock fields are stripped.
    let strip_timings = |raw: &[u8]| {
        let text = String::from_utf8(raw.to_vec()).unwrap();
        let head = text.split("\"load_ms\"").next().unwrap().to_string();
        let tables = text.split("\"tables\"").nth(1).unwrap().to_string();
        (head, tables)
    };
    assert_eq!(
        strip_timings(&default_pool.stdout),
        strip_timings(&pinned.stdout)
    );

    std::fs::remove_file(&csv).ok();
}

#[test]
fn malformed_input_exits_nonzero_with_line_number() {
    let path = std::env::temp_dir().join(format!("sigrule_e2e_bad_{}.csv", std::process::id()));
    std::fs::write(&path, "a,b,cls\n1,2,x\n3,y\n4,5,x\n").unwrap();
    let output = sigrule(&["mine", "--input", path.to_str().unwrap()]);
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("line 3"), "stderr: {stderr}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn unknown_class_column_names_the_candidates() {
    let path = std::env::temp_dir().join(format!("sigrule_e2e_cls_{}.csv", std::process::id()));
    std::fs::write(&path, "a,b,cls\n1,2,x\n3,4,y\n").unwrap();
    let output = sigrule(&[
        "mine",
        "--input",
        path.to_str().unwrap(),
        "--class",
        "label",
    ]);
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("label") && stderr.contains("cls"),
        "stderr: {stderr}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn usage_errors_exit_2() {
    let output = sigrule(&["mine", "--frobnicate", "1"]);
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("unknown option"));

    let output = sigrule(&["definitely-not-a-subcommand"]);
    assert_eq!(output.status.code(), Some(2));
}

/// The checked-in basket fixture (see `tests/fixtures.rs` at the workspace
/// root, which guards it against drift).
fn basket_fixture() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/retail_toy.basket")
}

#[test]
fn mine_basket_fixture_with_permutation_correction() {
    let fixture = basket_fixture();
    let output = sigrule(&[
        "mine",
        "--input",
        fixture.to_str().unwrap(),
        "--input-format",
        "basket",
        "--min-sup",
        "12",
        "--correction",
        "permutation",
        "--permutations",
        "200",
        "--format",
        "json",
        "--top",
        "0",
    ]);
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("\"input_format\":\"basket\""));
    assert!(stdout.contains("\"columns\":\"- (basket data)\""));

    // The same pipeline through the library API must agree rule-for-rule.
    let load = sigrule_data::loader::load_baskets_file(
        &fixture,
        &sigrule_data::loader::BasketOptions::default(),
    )
    .unwrap();
    let mined = mine_rules(&load.dataset, &RuleMiningConfig::new(12));
    let result = PermutationCorrection::new(200)
        .with_seed(17)
        .control_fwer(&mined, 0.05);
    assert!(
        result.n_significant() > 0,
        "the fixture's planted itemset should survive FWER control"
    );
    assert!(stdout.contains(&format!("\"significant\":\"{}\"", result.n_significant())));
    let space = mined.item_space();
    for rule in result.significant_rules() {
        let lhs: Vec<String> = rule
            .pattern
            .items()
            .iter()
            .map(|&i| space.describe_item(i))
            .collect();
        let expected_row = format!(
            "[\"{}\",\"{}\",\"{}\",\"{}\",\"{:.4}\",\"{:.6e}\"]",
            lhs.join(" AND "),
            space.class_name(rule.class).unwrap(),
            rule.coverage,
            rule.support,
            rule.confidence(),
            rule.p_value
        );
        assert!(
            stdout.contains(&expected_row),
            "missing rule row {expected_row} in CLI output"
        );
    }

    // Auto-detection picks the basket reader from the .basket extension.
    let auto = sigrule(&[
        "mine",
        "--input",
        fixture.to_str().unwrap(),
        "--min-sup",
        "12",
        "--format",
        "json",
    ]);
    assert!(auto.status.success());
    assert!(String::from_utf8_lossy(&auto.stdout).contains("\"input_format\":\"basket\""));
}

#[test]
fn basket_warnings_reach_stderr_without_breaking_json() {
    let path = std::env::temp_dir().join(format!("sigrule_e2e_warn_{}.basket", std::process::id()));
    std::fs::write(
        &path,
        "a b label:x\n\na c label:x\nb c label:y\nc d label:y\n",
    )
    .unwrap();
    let output = sigrule(&[
        "mine",
        "--input",
        path.to_str().unwrap(),
        "--min-sup",
        "1",
        "--format",
        "json",
    ]);
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("warning") && stderr.contains("line 2"),
        "stderr: {stderr}"
    );
    // stdout is still one clean JSON document
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.starts_with("{\"command\":\"mine\""));
    assert!(!stdout.contains("warning"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn strict_turns_loader_warnings_into_a_nonzero_exit() {
    let path =
        std::env::temp_dir().join(format!("sigrule_e2e_strict_{}.basket", std::process::id()));
    std::fs::write(
        &path,
        "a b label:x\n\na c label:x\nb c label:y\nc d label:y\n",
    )
    .unwrap();
    // Without --strict the blank line is a warning and the run succeeds
    // (covered above); with --strict it is fatal.
    let output = sigrule(&[
        "mine",
        "--input",
        path.to_str().unwrap(),
        "--min-sup",
        "1",
        "--strict",
    ]);
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("--strict") && stderr.contains("line 2"),
        "stderr: {stderr}"
    );
    assert!(output.stdout.is_empty(), "no report on a strict failure");
    std::fs::remove_file(&path).ok();
}

#[test]
fn unknown_correction_name_exits_2_naming_the_valid_values() {
    let csv = exported_csv("badcorr", 31);
    let output = sigrule(&[
        "mine",
        "--input",
        csv.to_str().unwrap(),
        "--correction",
        "bogus",
    ]);
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    for name in [
        "none",
        "bonferroni",
        "bh",
        "permutation",
        "holdout",
        "bogus",
    ] {
        assert!(
            stderr.contains(name),
            "stderr should mention {name}: {stderr}"
        );
    }
    std::fs::remove_file(&csv).ok();
}

#[test]
fn csv_format_emits_the_rule_table() {
    let csv = exported_csv("csvfmt", 9);
    let output = sigrule(&[
        "mine",
        "--input",
        csv.to_str().unwrap(),
        "--correction",
        "bonferroni",
        "--format",
        "csv",
    ]);
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.starts_with("rule,class,coverage,support,confidence,p_value\n"));
    std::fs::remove_file(&csv).ok();
}
