//! End-to-end tests for the socket transports (ISSUE 5 acceptance): spawn
//! the real `sigrule` binary with `serve --listen ...`, drive it over TCP
//! and Unix sockets with many concurrent clients, and assert that
//!
//! * warm and cold answers — whichever client asked — are bit-identical to
//!   a fresh one-shot [`Pipeline`] run (cutoff and per-rule p-values);
//! * a byte budget that forces eviction changes costs, never answers, and
//!   registry resident bytes stay under the budget;
//! * `shutdown` drains in-flight async workers on *other* connections
//!   before the process exits (the drain regression test);
//! * the `sigrule client` subcommand pipes a whole session.
//!
//! Every client read carries a hard timeout, so a hung accept loop or a
//! lost response fails the test in seconds instead of stalling CI (the CI
//! job additionally wraps this test binary in a `timeout`).

use sigrule::pipeline::{CorrectionApproach, Pipeline};
use sigrule::ErrorMetric;
use sigrule_server::json::Json;
use sigrule_server::transport::ListenAddr;
use sigrule_server::ClientStream;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// Per-read client timeout: far above the slowest cold query on the toy
/// fixture, far below any CI job timeout.
const READ_TIMEOUT: Duration = Duration::from_secs(120);

fn fixture() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/retail_toy.basket")
}

/// A spawned `sigrule serve --listen ...` process; killed on drop so a
/// failing test never leaks a listener.
struct ServedProcess {
    child: Child,
    addr: ListenAddr,
}

impl ServedProcess {
    fn spawn(listen: &str, extra_flags: &[&str]) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_sigrule"))
            .args(["serve", "--listen", listen])
            .args(extra_flags)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("binary runs");
        // The first stdout line is the ready line with the bound address.
        let stdout = child.stdout.as_mut().expect("stdout piped");
        let mut ready = String::new();
        BufReader::new(stdout)
            .read_line(&mut ready)
            .expect("ready line");
        let ready = Json::parse(ready.trim()).expect("ready line is JSON");
        assert_eq!(ready.get("ok").and_then(Json::as_bool), Some(true));
        let bound = ready
            .get("listening")
            .and_then(Json::as_str)
            .expect("ready line carries the bound address");
        let addr = ListenAddr::parse(bound).expect("bound address parses");
        ServedProcess { child, addr }
    }

    fn connect(&self) -> ClientStream {
        let mut client = ClientStream::connect(&self.addr).expect("connect");
        client
            .set_read_timeout(Some(READ_TIMEOUT))
            .expect("read timeout");
        client
    }

    /// Waits for the process to exit (after a shutdown request) and asserts
    /// a clean exit code.
    fn assert_clean_exit(mut self) {
        let status = self.child.wait().expect("serve exits");
        assert!(status.success(), "serve exited with {status:?}");
        // Forget the child so Drop does not try to kill a reaped process.
        std::mem::forget(self);
    }
}

impl Drop for ServedProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn assert_ok(resp: &Json) -> &Json {
    assert_eq!(
        resp.get("ok").and_then(Json::as_bool),
        Some(true),
        "expected ok: {}",
        resp.render()
    );
    resp
}

/// The reference answer every served response must match bit for bit.
struct Reference {
    significant: u64,
    n_tests: u64,
    cutoff_bits: u64,
    p_value_bits: Vec<u64>,
}

fn reference(min_sup: usize, permutations: usize, seed: u64) -> Reference {
    let one_shot = Pipeline::new(min_sup)
        .with_correction(CorrectionApproach::Permutation, ErrorMetric::Fwer)
        .with_permutations(permutations)
        .with_seed(seed)
        .run_file(fixture())
        .unwrap();
    let mut rules: Vec<_> = one_shot
        .result
        .significant_rules()
        .into_iter()
        .cloned()
        .collect();
    sigrule::rule::sort_by_significance(&mut rules);
    Reference {
        significant: one_shot.result.n_significant() as u64,
        n_tests: one_shot.result.n_tests as u64,
        cutoff_bits: one_shot.result.p_value_cutoff.unwrap().to_bits(),
        p_value_bits: rules.iter().map(|r| r.p_value.to_bits()).collect(),
    }
}

fn assert_matches_reference(resp: &Json, reference: &Reference, context: &str) {
    assert_eq!(
        resp.get("significant").and_then(Json::as_u64),
        Some(reference.significant),
        "{context}: significant"
    );
    assert_eq!(
        resp.get("hypothesis_tests").and_then(Json::as_u64),
        Some(reference.n_tests),
        "{context}: hypothesis_tests"
    );
    let cutoff = resp
        .get("p_value_cutoff")
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("{context}: cutoff missing in {}", resp.render()));
    assert_eq!(
        cutoff.to_bits(),
        reference.cutoff_bits,
        "{context}: cutoff bits"
    );
    let rules = match resp.get("rules") {
        Some(Json::Array(rules)) => rules,
        other => panic!("{context}: rules should be an array, got {other:?}"),
    };
    assert_eq!(
        rules.len(),
        reference.p_value_bits.len(),
        "{context}: rule count"
    );
    for (i, (rule, expected)) in rules.iter().zip(&reference.p_value_bits).enumerate() {
        let p = rule.get("p_value").and_then(Json::as_f64).unwrap();
        assert_eq!(p.to_bits(), *expected, "{context}: rule {i} p-value bits");
    }
}

fn correct_line(id: &str, dataset: &str, alpha: f64, asynchronous: bool) -> String {
    let async_field = if asynchronous { r#""async":true,"# } else { "" };
    format!(
        r#"{{"id":"{id}","cmd":"correct",{async_field}"dataset":"{dataset}","min_sup":8,"correction":"permutation","metric":"fwer","permutations":100,"seed":17,"alpha":{alpha},"top":0}}"#
    )
}

/// N clients over TCP race warm and cold permutation queries on two named
/// datasets; every response is bit-identical to a fresh one-shot pipeline.
#[test]
fn tcp_multi_client_queries_are_bit_identical_to_one_shot_runs() {
    let served = ServedProcess::spawn("tcp:127.0.0.1:0", &[]);
    let path = fixture();
    let path_str = path.to_str().unwrap();

    // One admin connection loads the same fixture under two names.
    let mut admin = served.connect();
    for name in ["a", "b"] {
        let resp = admin
            .request(&format!(
                r#"{{"cmd":"load","path":"{path_str}","name":"{name}"}}"#
            ))
            .unwrap();
        assert_ok(&resp);
    }

    let reference = reference(8, 100, 17);
    // Four clients race: two per dataset, same query — the engine's
    // once-cells make one of each pair cold and the other warm, whatever
    // the interleaving; answers must be identical either way.
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let dataset = if i % 2 == 0 { "a" } else { "b" };
            let served = &served;
            let line = correct_line("q", dataset, 0.05, false);
            let mut client = served.connect();
            std::thread::spawn(move || {
                let resp = client.request(&line).unwrap();
                (resp, i)
            })
        })
        .collect();
    let mut cold = 0;
    for handle in handles {
        let (resp, i) = handle.join().unwrap();
        assert_ok(&resp);
        assert_matches_reference(&resp, &reference, &format!("racing client {i}"));
        if resp.get("null_cached").and_then(Json::as_bool) == Some(false) {
            cold += 1;
        }
    }
    // Exactly one client per dataset collected the null.
    assert_eq!(cold, 2, "one cold null per dataset");

    // A warm repeat over yet another connection: fully cached, still
    // bit-identical.
    let mut late = served.connect();
    let resp = late
        .request(&correct_line("warm", "a", 0.05, false))
        .unwrap();
    assert_ok(&resp);
    assert_eq!(resp.get("mined_cached").and_then(Json::as_bool), Some(true));
    assert_eq!(resp.get("null_cached").and_then(Json::as_bool), Some(true));
    assert_matches_reference(&resp, &reference, "warm repeat");

    // registry_stats sees both datasets and their resident bytes.
    let stats = late.request(r#"{"cmd":"registry_stats"}"#).unwrap();
    assert_ok(&stats);
    assert_eq!(stats.get("datasets_loaded").and_then(Json::as_u64), Some(2));
    assert!(stats.get("resident_bytes").and_then(Json::as_u64).unwrap() > 0);

    let bye = admin.request(r#"{"cmd":"shutdown"}"#).unwrap();
    assert_ok(&bye);
    served.assert_clean_exit();
}

/// The same workload over a Unix socket, with a byte budget that forces
/// eviction after every request: re-queried datasets recompute and still
/// match bit-identically, while resident bytes stay under the budget.
#[cfg(unix)]
#[test]
fn unix_socket_eviction_recomputes_bit_identically_under_budget() {
    let sock = std::env::temp_dir().join(format!("sigrule_e2e_{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    // A 0 MiB budget is the harshest policy: every cache entry is evicted
    // as soon as the request that filled it completes.
    let served = ServedProcess::spawn(
        &format!("unix:{}", sock.display()),
        &["--cache-budget-mb", "0"],
    );
    let path = fixture();
    let path_str = path.to_str().unwrap();

    let mut client = served.connect();
    for name in ["a", "b"] {
        let resp = client
            .request(&format!(
                r#"{{"cmd":"load","path":"{path_str}","name":"{name}"}}"#
            ))
            .unwrap();
        assert_ok(&resp);
    }

    let reference = reference(8, 100, 17);
    // Alternate datasets for three rounds: with everything evicted between
    // requests, every query is a recompute — and every answer identical.
    for round in 0..3 {
        for dataset in ["a", "b"] {
            let resp = client
                .request(&correct_line("q", dataset, 0.05, false))
                .unwrap();
            assert_ok(&resp);
            assert_eq!(
                resp.get("null_cached").and_then(Json::as_bool),
                Some(false),
                "round {round}/{dataset}: eviction forces a recompute"
            );
            assert_matches_reference(&resp, &reference, &format!("round {round}/{dataset}"));
        }
    }

    let stats = client.request(r#"{"cmd":"registry_stats"}"#).unwrap();
    assert_ok(&stats);
    let resident = stats.get("resident_bytes").and_then(Json::as_u64).unwrap();
    let budget = stats.get("budget_bytes").and_then(Json::as_u64).unwrap();
    assert!(
        resident <= budget,
        "resident {resident} exceeds budget {budget}"
    );
    assert!(
        stats.get("evictions").and_then(Json::as_u64).unwrap() >= 6,
        "every round evicted"
    );

    let bye = client.request(r#"{"cmd":"shutdown"}"#).unwrap();
    assert_ok(&bye);
    served.assert_clean_exit();
    assert!(!sock.exists(), "socket file removed on graceful exit");
}

/// Regression test for the shutdown drain: an async worker still running on
/// one connection when another connection requests shutdown must deliver
/// its response before the process exits.
#[test]
fn shutdown_drains_async_workers_on_other_connections() {
    let served = ServedProcess::spawn("tcp:127.0.0.1:0", &[]);
    let path = fixture();
    let path_str = path.to_str().unwrap();

    let mut admin = served.connect();
    let resp = admin
        .request(&format!(r#"{{"cmd":"load","path":"{path_str}"}}"#))
        .unwrap();
    assert_ok(&resp);

    // The worker connection fires an async (cold, slow) query and does NOT
    // read; the admin connection requests shutdown as soon as the query is
    // in flight (the engine's query counter ticks at query start — the
    // drain guarantee covers accepted work, not bytes still in a socket
    // buffer).
    let mut worker = served.connect();
    worker
        .send(&correct_line("slow", "default", 0.05, true))
        .unwrap();
    loop {
        let stats = admin.request(r#"{"cmd":"stats"}"#).unwrap();
        if stats.get("queries").and_then(Json::as_u64).unwrap_or(0) >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let bye = admin.request(r#"{"id":"bye","cmd":"shutdown"}"#).unwrap();
    assert_ok(&bye);

    // The drain wrote the worker's full answer before the exit.
    let slow = worker.read_response().unwrap();
    assert_eq!(slow.get("id").and_then(Json::as_str), Some("slow"));
    assert_ok(&slow);
    assert_matches_reference(&slow, &reference(8, 100, 17), "drained worker");
    served.assert_clean_exit();
}

/// A TCP client that vanishes right after firing a cold async `correct`
/// must not leak its worker or stall anyone else: other connections keep
/// answering (bit-identically), and shutdown still drains and exits
/// cleanly.
#[test]
fn dropped_client_mid_cold_query_does_not_stall_other_connections() {
    let served = ServedProcess::spawn("tcp:127.0.0.1:0", &[]);
    let path = fixture();
    let path_str = path.to_str().unwrap();

    let mut admin = served.connect();
    let resp = admin
        .request(&format!(r#"{{"cmd":"load","path":"{path_str}"}}"#))
        .unwrap();
    assert_ok(&resp);

    // The doomed connection fires a cold async query, never reads, and is
    // dropped as soon as the engine has accepted the work.
    {
        let mut doomed = served.connect();
        doomed
            .send(&correct_line("doomed", "default", 0.05, true))
            .unwrap();
        loop {
            let stats = admin.request(r#"{"cmd":"stats"}"#).unwrap();
            if stats.get("queries").and_then(Json::as_u64).unwrap_or(0) >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    } // <- socket closed here, mid-flight

    // Other connections are not stalled: a fresh client runs the same
    // query and gets the full, bit-identical answer (whether it shares
    // the doomed worker's fill or redoes the work itself).
    let mut survivor = served.connect();
    let resp = survivor
        .request(&correct_line("live", "default", 0.05, false))
        .unwrap();
    assert_ok(&resp);
    assert_matches_reference(&resp, &reference(8, 100, 17), "survivor after drop");

    // Shutdown drains whatever is left of the doomed worker and exits
    // cleanly — a leaked worker would hang the drain (and trip the CI
    // timeout wrapping this binary).
    let bye = survivor.request(r#"{"cmd":"shutdown"}"#).unwrap();
    assert_ok(&bye);
    served.assert_clean_exit();
}

/// `sigrule client` pipes a scripted session into a served process.
#[cfg(unix)]
#[test]
fn client_subcommand_pipes_a_session() {
    let sock = std::env::temp_dir().join(format!("sigrule_cli_e2e_{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    let served = ServedProcess::spawn(&format!("unix:{}", sock.display()), &[]);
    let path = fixture();

    let load_line = format!(
        r#"{{"id":"load","cmd":"load","path":"{}"}}"#,
        path.to_str().unwrap()
    );
    let script = format!(
        "{load_line}\n{}\n{}\n{}\n",
        r#"{"id":"q","cmd":"correct","min_sup":8,"correction":"bonferroni"}"#,
        r#"{"id":"r","cmd":"registry_stats"}"#,
        r#"{"id":"bye","cmd":"shutdown"}"#,
    );
    let mut client = Command::new(env!("CARGO_BIN_EXE_sigrule"))
        .args(["client", "--connect", &format!("unix:{}", sock.display())])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("client runs");
    client
        .stdin
        .take()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    let output = client.wait_with_output().expect("client exits");
    assert!(
        output.status.success(),
        "client failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let responses: Vec<Json> = String::from_utf8(output.stdout)
        .unwrap()
        .lines()
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("bad response {l:?}: {e}")))
        .collect();
    assert_eq!(responses.len(), 4, "one response per request");
    for resp in &responses {
        assert_ok(resp);
    }
    let ids: Vec<&str> = responses
        .iter()
        .map(|r| r.get("id").and_then(Json::as_str).unwrap())
        .collect();
    assert_eq!(ids, vec!["load", "q", "r", "bye"]);
    served.assert_clean_exit();
}
