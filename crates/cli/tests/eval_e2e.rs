//! End-to-end tests of `sigrule eval`: determinism across thread counts and
//! repeated invocations, the paper's Table 2 ordering on the rendered CSV,
//! and the committed golden fixture.

use sigrule_cli::{run, RunOutcome};

fn eval(parts: &[&str]) -> RunOutcome {
    let mut argv = vec!["eval".to_string()];
    argv.extend(parts.iter().map(|s| s.to_string()));
    run(&argv)
}

/// A small planted-rule sweep (the acceptance grid, scaled down to test
/// size): 2 dataset sizes × 2 noise levels × 3 corrections.
const SWEEP_ARGS: &[&str] = &[
    "--grid",
    "rows=150,300",
    "noise=0.1,0.3",
    "rules=1",
    "coverage=0.25",
    "--corrections",
    "none,direct,permutation",
    "--reps",
    "3",
    "--seed",
    "42",
    "--permutations",
    "40",
    "--attributes",
    "12",
    "--min-sup-frac",
    "0.1",
];

fn with_format(format: &str, extra: &[&'static str]) -> Vec<&'static str> {
    // Leaking is fine in tests; keeps the argv plumbing simple.
    let mut args: Vec<&'static str> = SWEEP_ARGS.to_vec();
    args.push("--format");
    args.push(Box::leak(format.to_string().into_boxed_str()));
    args.extend(extra);
    args
}

#[test]
fn output_is_bit_identical_across_thread_counts() {
    let base = eval(&with_format("json", &[]));
    assert_eq!(base.exit_code, 0, "stderr: {}", base.stderr);
    for threads in ["1", "2", "8"] {
        let pinned = eval(&with_format("json", &["--threads", threads]));
        assert_eq!(pinned.exit_code, 0, "stderr: {}", pinned.stderr);
        assert_eq!(
            base.stdout, pinned.stdout,
            "--threads {threads} changed the output"
        );
    }
    // A repeated identical invocation (fresh, cold runner) is also
    // bit-identical.
    let again = eval(&with_format("json", &[]));
    assert_eq!(base.stdout, again.stdout);
}

#[test]
fn csv_cells_show_the_papers_table_2_ordering() {
    let outcome = eval(&with_format("csv", &[]));
    assert_eq!(outcome.exit_code, 0, "stderr: {}", outcome.stderr);
    let mut lines = outcome.stdout.lines();
    let header: Vec<&str> = lines.next().expect("csv header").split(',').collect();
    let col = |name: &str| {
        header
            .iter()
            .position(|h| *h == name)
            .unwrap_or_else(|| panic!("missing column {name}"))
    };
    let (c_rows, c_noise, c_corr) = (col("rows"), col("noise"), col("correction"));
    let (c_fp, c_recall, c_fwer) = (col("mean_fp"), col("recall"), col("fwer"));

    let rows: Vec<Vec<&str>> = lines.map(|l| l.split(',').collect()).collect();
    assert_eq!(rows.len(), 2 * 2 * 3, "one row per cell");

    // Group by dataset cell (rows × noise): within each, compare corrections.
    for dataset in ["150", "300"] {
        for noise in ["0.1", "0.3"] {
            let cell = |correction: &str| -> &Vec<&str> {
                rows.iter()
                    .find(|r| {
                        r[c_rows] == dataset && r[c_noise] == noise && r[c_corr] == correction
                    })
                    .unwrap_or_else(|| panic!("no cell {dataset}/{noise}/{correction}"))
            };
            let fp = |correction: &str| cell(correction)[c_fp].parse::<f64>().unwrap();
            let fwer = |correction: &str| cell(correction)[c_fwer].parse::<f64>().unwrap();
            let recall = |correction: &str| cell(correction)[c_recall].parse::<f64>().unwrap();

            // Table 2's ordering: uncorrected reports strictly more false
            // positives than the permutation approach, whose empirical FWER
            // stays at the α level (3 replicates: 0 contaminated).
            assert!(
                fp("none") > fp("permutation"),
                "{dataset}/{noise}: none fp {} !> permutation fp {}",
                fp("none"),
                fp("permutation")
            );
            assert!(
                fwer("permutation") <= fwer("none"),
                "{dataset}/{noise}: permutation fwer above uncorrected"
            );
            assert!(
                fp("direct") <= fp("none"),
                "{dataset}/{noise}: bonferroni above uncorrected"
            );
            // The planted rule (confidence ≥ 0.7) is found by the corrected
            // approaches on the larger datasets.
            if dataset == "300" && noise == "0.1" {
                assert!(
                    recall("permutation") > 0.0,
                    "{dataset}/{noise}: permutation missed the planted rule"
                );
                assert!(recall("direct") > 0.0);
            }
        }
    }
}

#[test]
fn golden_fixture_matches() {
    // The committed fixture pins the full JSON output of a small sweep; any
    // change to seeding, metrics, formatting or cell ordering shows up as a
    // diff here.  Regenerate (after an intentional change) with:
    //   cargo run -p sigrule_cli -- eval --grid rows=150 noise=0.2 \
    //     --corrections none,permutation --reps 2 --seed 42 \
    //     --permutations 40 --attributes 8 --min-sup-frac 0.08 \
    //     --format json > tests/fixtures/eval_smoke.json
    let outcome = eval(&[
        "--grid",
        "rows=150",
        "noise=0.2",
        "--corrections",
        "none,permutation",
        "--reps",
        "2",
        "--seed",
        "42",
        "--permutations",
        "40",
        "--attributes",
        "8",
        "--min-sup-frac",
        "0.08",
        "--format",
        "json",
    ]);
    assert_eq!(outcome.exit_code, 0, "stderr: {}", outcome.stderr);
    let fixture_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/fixtures/eval_smoke.json"
    );
    let expected = std::fs::read_to_string(fixture_path)
        .unwrap_or_else(|e| panic!("cannot read {fixture_path}: {e}"));
    assert_eq!(
        outcome.stdout, expected,
        "eval output drifted from the golden fixture"
    );
}
