//! End-to-end tests for the unified observability layer:
//!
//! * **Bit-identity guard** — `sigrule correct` output bytes are identical
//!   with `SIGRULE_LOG=debug` vs unset and with metrics enabled vs
//!   `SIGRULE_METRICS=off`.  Observability must never change answers.
//! * **Trace propagation** — a coordinator's trace id rides `perm_shard`
//!   requests over real TCP and shows up in the remote worker's structured
//!   log, joining both processes on one trace.
//! * **Metrics scrape** — a spawned `sigrule serve` answers a `metrics`
//!   request with a Prometheus exposition covering the required families
//!   (the same contract `scripts/check_metrics.sh` validates in CI).
//! * **Slow-query log** — `--slow-query-ms 0` makes every query emit one
//!   structured slow-query record with the per-phase breakdown on stderr.

use sigrule_server::json::Json;
use sigrule_server::transport::ListenAddr;
use sigrule_server::ClientStream;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const READ_TIMEOUT: Duration = Duration::from_secs(120);

fn fixture() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/retail_toy.basket")
}

/// A spawned `sigrule serve --listen ...` process with env overrides;
/// killed on drop so a failing test never leaks a listener.
struct ServedProcess {
    child: Child,
    addr: ListenAddr,
}

impl ServedProcess {
    fn spawn(extra_flags: &[&str], env: &[(&str, &str)]) -> Self {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_sigrule"));
        cmd.args(["serve", "--listen", "tcp:127.0.0.1:0"])
            .args(extra_flags)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        for (key, value) in env {
            cmd.env(key, value);
        }
        let mut child = cmd.spawn().expect("binary runs");
        let stdout = child.stdout.as_mut().expect("stdout piped");
        let mut ready = String::new();
        BufReader::new(stdout)
            .read_line(&mut ready)
            .expect("ready line");
        let ready = Json::parse(ready.trim()).expect("ready line is JSON");
        assert_eq!(ready.get("ok").and_then(Json::as_bool), Some(true));
        let bound = ready
            .get("listening")
            .and_then(Json::as_str)
            .expect("bound address");
        let addr = ListenAddr::parse(bound).expect("bound address parses");
        ServedProcess { child, addr }
    }

    fn connect(&self) -> ClientStream {
        let mut client = ClientStream::connect(&self.addr).expect("connect");
        client
            .set_read_timeout(Some(READ_TIMEOUT))
            .expect("read timeout");
        client
    }

    /// Shuts the server down via a request and returns everything it wrote
    /// to stderr (the structured log).
    fn shutdown_and_read_stderr(mut self) -> String {
        let mut client = self.connect();
        let bye = client.request(r#"{"cmd":"shutdown"}"#).expect("shutdown");
        assert_eq!(bye.get("ok").and_then(Json::as_bool), Some(true));
        let status = self.child.wait().expect("serve exits");
        assert!(status.success(), "serve exited with {status:?}");
        let mut stderr = String::new();
        self.child
            .stderr
            .take()
            .expect("stderr piped")
            .read_to_string(&mut stderr)
            .expect("stderr reads");
        std::mem::forget(self);
        stderr
    }
}

impl Drop for ServedProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn assert_ok(resp: &Json) -> &Json {
    assert_eq!(
        resp.get("ok").and_then(Json::as_bool),
        Some(true),
        "expected ok: {}",
        resp.render()
    );
    resp
}

/// Runs `sigrule correct` once with the given env overrides and returns
/// raw stdout bytes.
fn correct_stdout(env: &[(&str, &str)]) -> Vec<u8> {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_sigrule"));
    cmd.args([
        "correct",
        "--input",
        fixture().to_str().unwrap(),
        "--min-sup",
        "8",
        "--permutations",
        "60",
        "--seed",
        "17",
        "--format",
        "json",
    ])
    .stdin(Stdio::null())
    .stdout(Stdio::piped())
    .stderr(Stdio::piped());
    for (key, value) in env {
        cmd.env(key, value);
    }
    let output = cmd.output().expect("correct runs");
    assert!(
        output.status.success(),
        "correct failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    output.stdout
}

/// Blanks the wall-clock timing values (`*_ms":"…"` summary fields and the
/// numeric `time_ms` column closing each table row), which jitter between
/// *any* two runs.  Everything else — decisions, counts, p-value cutoffs —
/// must be bit-identical.
fn normalize_timings(raw: &[u8]) -> String {
    let text = String::from_utf8(raw.to_vec()).expect("stdout is UTF-8");
    // Pass 1: `"load_ms":"0.7"` → `"load_ms":"T"`, same for every *_ms key.
    let mut pass1 = String::with_capacity(text.len());
    let mut rest = text.as_str();
    while let Some(pos) = rest.find("_ms\":\"") {
        let after = pos + "_ms\":\"".len();
        pass1.push_str(&rest[..after]);
        pass1.push('T');
        let tail = &rest[after..];
        rest = &tail[tail.find('"').unwrap_or(tail.len())..];
    }
    pass1.push_str(rest);
    // Pass 2: a numeric string ending a JSON row array (`,"2.9"]`) is the
    // table's trailing time_ms column → `,"T"]`.
    let bytes = pass1.as_bytes();
    let mut out = String::with_capacity(pass1.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b',' && bytes.get(i + 1) == Some(&b'"') {
            let mut j = i + 2;
            while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'.') {
                j += 1;
            }
            if j > i + 2 && bytes.get(j) == Some(&b'"') && bytes.get(j + 1) == Some(&b']') {
                out.push_str(",\"T\"]");
                i = j + 2;
                continue;
            }
        }
        out.push(bytes[i] as char);
        i += 1;
    }
    out
}

/// The acceptance-tested invariant: observability never changes answers.
/// Identical output bits (timing jitter aside) across SIGRULE_LOG
/// debug/unset × metrics on/off.
#[test]
fn correct_output_bytes_are_identical_across_observability_settings() {
    let baseline = normalize_timings(&correct_stdout(&[]));
    assert!(!baseline.is_empty());
    for (label, env) in [
        ("SIGRULE_LOG=debug", vec![("SIGRULE_LOG", "debug")]),
        ("SIGRULE_METRICS=off", vec![("SIGRULE_METRICS", "off")]),
        (
            "debug log + metrics off",
            vec![("SIGRULE_LOG", "debug"), ("SIGRULE_METRICS", "off")],
        ),
        ("SIGRULE_LOG=error", vec![("SIGRULE_LOG", "error")]),
    ] {
        let got = normalize_timings(&correct_stdout(&env));
        assert_eq!(
            got, baseline,
            "{label}: stdout bytes must not depend on observability settings"
        );
    }
}

/// A coordinator's trace id propagates over the wire: the remote worker's
/// structured log carries the same 32-hex id the coordinating server was
/// given, for both the shard requests and its own request-handled events.
#[test]
fn trace_id_propagates_to_a_remote_shard_worker() {
    let trace = "cafef00dcafef00dcafef00dcafef00d";
    let path = fixture();
    let path_str = path.to_str().unwrap();

    // The worker logs request milestones (info) as structured JSON.
    let worker = ServedProcess::spawn(&[], &[("SIGRULE_LOG", "info")]);
    let worker_addr = worker.addr.to_string();

    // The coordinator is a second served process; it receives the traced
    // request and scatters shards to the worker.
    let coordinator = ServedProcess::spawn(&[], &[("SIGRULE_LOG", "info")]);
    let mut client = coordinator.connect();
    let resp = client
        .request(&format!(r#"{{"cmd":"load","path":"{path_str}"}}"#))
        .unwrap();
    assert_ok(&resp);
    let resp = client
        .request(&format!(
            r#"{{"cmd":"correct","trace_id":"{trace}","min_sup":8,"correction":"permutation","permutations":100,"seed":17,"workers":"{worker_addr}"}}"#
        ))
        .unwrap();
    assert_ok(&resp);
    // The supplied trace id is echoed in the response.
    assert_eq!(resp.get("trace_id").and_then(Json::as_str), Some(trace));
    // The scatter actually used the worker (shard counters tick on the
    // coordinating process).
    let stats = client.request(r#"{"cmd":"stats"}"#).unwrap();
    assert_ok(&stats);
    assert!(
        stats
            .get("shards_remote")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            > 0,
        "the worker should have taken at least one range: {}",
        stats.render()
    );

    let worker_log = worker.shutdown_and_read_stderr();
    let coordinator_log = coordinator.shutdown_and_read_stderr();
    assert!(
        coordinator_log.contains(trace),
        "coordinator log should carry the trace id:\n{coordinator_log}"
    );
    let traced_shards: Vec<&str> = worker_log
        .lines()
        .filter(|l| l.contains(trace) && l.contains("perm_shard"))
        .collect();
    assert!(
        !traced_shards.is_empty(),
        "worker log should show perm_shard events on the coordinator's trace:\n{worker_log}"
    );
    // Structured, not prose: each matching line parses as a JSON event
    // with the trace_id field.
    for line in traced_shards {
        let event = Json::parse(line).unwrap_or_else(|e| panic!("bad log line {line:?}: {e}"));
        assert_eq!(event.get("trace_id").and_then(Json::as_str), Some(trace));
        assert!(event.get("level").and_then(Json::as_str).is_some());
    }
}

/// A spawned server's `metrics` scrape covers the families the CI
/// validator requires, and `--slow-query-ms 0` logs one structured record
/// per query with the phase breakdown.
#[test]
fn served_metrics_scrape_and_slow_query_log() {
    let path = fixture();
    let path_str = path.to_str().unwrap();
    let served = ServedProcess::spawn(&["--slow-query-ms", "0"], &[("SIGRULE_LOG", "warn")]);

    let mut client = served.connect();
    let resp = client
        .request(&format!(r#"{{"cmd":"load","path":"{path_str}"}}"#))
        .unwrap();
    assert_ok(&resp);
    let resp = client
        .request(
            r#"{"cmd":"correct","min_sup":8,"correction":"permutation","permutations":60,"seed":17}"#,
        )
        .unwrap();
    assert_ok(&resp);

    let scrape = client.request(r#"{"cmd":"metrics"}"#).unwrap();
    assert_ok(&scrape);
    let body = scrape.get("body").and_then(Json::as_str).unwrap();
    for family in [
        "sigrule_queries_total",
        "sigrule_cache_hits_total",
        "sigrule_cache_misses_total",
        "sigrule_cache_evictions_total",
        "sigrule_query_phase_seconds",
        "sigrule_cache_resident_bytes",
        "sigrule_shards_total",
        "sigrule_kernel_sweeps_total",
    ] {
        assert!(
            body.contains(&format!("# HELP {family} ")),
            "scrape missing family {family}:\n{body}"
        );
    }

    let stderr = served.shutdown_and_read_stderr();
    let slow: Vec<&str> = stderr
        .lines()
        .filter(|l| l.contains("\"msg\":\"slow query\""))
        .collect();
    assert!(
        !slow.is_empty(),
        "slow-query record expected at a 0 ms threshold:\n{stderr}"
    );
    let record = Json::parse(slow[0]).expect("slow-query record is JSON");
    assert_eq!(
        record.get("target").and_then(Json::as_str),
        Some("sigrule::serve::slow")
    );
    for field in ["cmd", "total_ms", "threshold_ms"] {
        assert!(record.get(field).is_some(), "missing {field}: {}", slow[0]);
    }
}

/// `sigrule client` forwards request lines as-is, so a trace id supplied on
/// stdin comes back on the matching response line.
#[test]
fn client_subcommand_round_trips_a_trace_id() {
    let trace = "0123456789abcdef0123456789abcdef";
    let served = ServedProcess::spawn(&[], &[]);
    let script = format!(
        "{}\n{}\n",
        format_args!(r#"{{"id":"s","cmd":"registry_stats","trace_id":"{trace}"}}"#),
        r#"{"id":"bye","cmd":"shutdown"}"#,
    );
    let mut client = Command::new(env!("CARGO_BIN_EXE_sigrule"))
        .args(["client", "--connect", &served.addr.to_string()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("client runs");
    client
        .stdin
        .take()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    let output = client.wait_with_output().expect("client exits");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    let traced = stdout
        .lines()
        .map(|l| Json::parse(l).unwrap())
        .find(|r| r.get("id").and_then(Json::as_str) == Some("s"))
        .expect("stats response present");
    assert_eq!(traced.get("trace_id").and_then(Json::as_str), Some(trace));
    // The server process exits on its own after the shutdown request.
    std::mem::forget(served);
}
