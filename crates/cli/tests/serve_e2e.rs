//! End-to-end smoke test for `sigrule serve` (ISSUE 4 acceptance): spawn the
//! binary, pipe a load + mine + correct + correct + stats + shutdown session
//! over stdin, and assert the JSON responses — the second (warm) permutation
//! correction must be answered without re-mining or re-permuting (the stage
//! timings prove it), and both responses must be bit-identical to a one-shot
//! `Pipeline` run with the same seed.

use sigrule::pipeline::{CorrectionApproach, Pipeline};
use sigrule::ErrorMetric;
use sigrule_cli::json::Json;
use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Stdio};

fn fixture() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/retail_toy.basket")
}

/// Runs one serve session over the script and returns the response lines.
fn serve_session(script: &str) -> Vec<Json> {
    let mut child = Command::new(env!("CARGO_BIN_EXE_sigrule"))
        .arg("serve")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(script.as_bytes())
        .expect("script written");
    let output = child.wait_with_output().expect("serve exits");
    assert!(
        output.status.success(),
        "serve failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout)
        .expect("responses are UTF-8")
        .lines()
        .map(|line| Json::parse(line).unwrap_or_else(|e| panic!("bad response {line:?}: {e}")))
        .collect()
}

fn by_id<'a>(responses: &'a [Json], id: &str) -> &'a Json {
    responses
        .iter()
        .find(|r| r.get("id").and_then(Json::as_str) == Some(id))
        .unwrap_or_else(|| panic!("no response with id {id:?}"))
}

fn assert_ok(resp: &Json) {
    assert_eq!(
        resp.get("ok").and_then(Json::as_bool),
        Some(true),
        "expected ok: {}",
        resp.render()
    );
}

#[test]
fn warm_serve_answers_match_one_shot_pipeline_bit_for_bit() {
    let path = fixture();
    assert!(path.exists(), "fixture missing: {}", path.display());
    let path_str = path.to_str().unwrap();

    let correct = r#""cmd":"correct","min_sup":8,"correction":"permutation","metric":"fwer","alpha":0.05,"permutations":200,"seed":17,"top":0"#;
    let load_line = format!(r#"{{"id":"load","cmd":"load","path":"{path_str}"}}"#);
    let cold_line = format!(r#"{{"id":"cold",{correct}}}"#);
    let warm_line = format!(r#"{{"id":"warm",{correct}}}"#);
    let script = format!(
        "{}\n{}\n{}\n{}\n{}\n{}\n",
        load_line,
        r#"{"id":"mine","cmd":"mine","min_sup":8}"#,
        cold_line,
        warm_line,
        r#"{"id":"stats","cmd":"stats"}"#,
        r#"{"id":"bye","cmd":"shutdown"}"#,
    );
    let responses = serve_session(&script);
    assert_eq!(responses.len(), 6, "one response per request");
    for resp in &responses {
        assert_ok(resp);
    }

    let load = by_id(&responses, "load");
    let n_records = load.get("records").and_then(Json::as_u64).unwrap();
    assert!(n_records > 0);
    assert_eq!(load.get("format").and_then(Json::as_str), Some("basket"));

    // The explicit mine populated the cache, so the first correct already
    // reuses the rule set; its null is still cold.
    let mine = by_id(&responses, "mine");
    assert_eq!(
        mine.get("mined_cached").and_then(Json::as_bool),
        Some(false)
    );
    let rules_mined = mine.get("rules_mined").and_then(Json::as_u64).unwrap();
    assert!(rules_mined > 0);

    let cold = by_id(&responses, "cold");
    assert_eq!(cold.get("mined_cached").and_then(Json::as_bool), Some(true));
    assert_eq!(cold.get("null_cached").and_then(Json::as_bool), Some(false));

    // The warm request re-mined nothing and re-permuted nothing: both cache
    // flags are set and the mine/null stage timings are exactly zero.
    let warm = by_id(&responses, "warm");
    assert_eq!(warm.get("mined_cached").and_then(Json::as_bool), Some(true));
    assert_eq!(warm.get("null_cached").and_then(Json::as_bool), Some(true));
    assert_eq!(warm.get("mine_ms").and_then(Json::as_f64), Some(0.0));
    assert_eq!(warm.get("null_ms").and_then(Json::as_f64), Some(0.0));
    assert!(
        cold.get("null_ms").and_then(Json::as_f64).unwrap() > 0.0,
        "the cold request actually permuted"
    );

    // Cold and warm answers are identical in every decision-bearing field.
    for field in [
        "method",
        "significant",
        "p_value_cutoff",
        "hypothesis_tests",
        "rules_mined",
        "rules",
    ] {
        assert_eq!(cold.get(field), warm.get(field), "field {field}");
    }

    // ... and bit-identical to a one-shot Pipeline run with the same seed.
    let one_shot = Pipeline::new(8)
        .with_correction(CorrectionApproach::Permutation, ErrorMetric::Fwer)
        .with_permutations(200)
        .with_seed(17)
        .run_file(&path)
        .unwrap();
    assert_eq!(
        warm.get("significant").and_then(Json::as_u64),
        Some(one_shot.result.n_significant() as u64)
    );
    assert_eq!(
        warm.get("hypothesis_tests").and_then(Json::as_u64),
        Some(one_shot.result.n_tests as u64)
    );
    let cutoff = one_shot.result.p_value_cutoff.unwrap();
    // `{:e}` prints the shortest round-trippable representation, so parsing
    // the served number back yields the exact bits the library computed.
    let served_cutoff: f64 = warm.get("p_value_cutoff").and_then(Json::as_f64).unwrap();
    assert_eq!(
        served_cutoff.to_bits(),
        cutoff.to_bits(),
        "cutoff is bit-identical"
    );
    // Every served significant rule matches the library's, p-values included.
    let served_rules = match warm.get("rules") {
        Some(Json::Array(rules)) => rules,
        other => panic!("rules should be an array, got {other:?}"),
    };
    let mut expected: Vec<_> = one_shot
        .result
        .significant_rules()
        .into_iter()
        .cloned()
        .collect();
    sigrule::rule::sort_by_significance(&mut expected);
    assert_eq!(served_rules.len(), expected.len());
    let space = one_shot.mined.item_space();
    for (served, rule) in served_rules.iter().zip(expected.iter()) {
        let p_served: f64 = served.get("p_value").and_then(Json::as_f64).unwrap();
        assert_eq!(p_served.to_bits(), rule.p_value.to_bits());
        assert_eq!(
            served.get("class").and_then(Json::as_str),
            space.class_name(rule.class).ok()
        );
        assert_eq!(
            served.get("coverage").and_then(Json::as_u64),
            Some(rule.coverage as u64)
        );
        assert_eq!(
            served.get("support").and_then(Json::as_u64),
            Some(rule.support as u64)
        );
    }

    let stats = by_id(&responses, "stats");
    assert_eq!(stats.get("loaded").and_then(Json::as_bool), Some(true));
    assert_eq!(
        stats.get("cached_rule_sets").and_then(Json::as_u64),
        Some(1)
    );
    assert_eq!(stats.get("cached_nulls").and_then(Json::as_u64), Some(1));
    assert_eq!(stats.get("null_hits").and_then(Json::as_u64), Some(1));
}

#[test]
fn async_queries_run_concurrently_and_permute_once() {
    let path = fixture();
    let correct = |id: &str, alpha: f64| {
        format!(
            r#"{{"id":"{id}","cmd":"correct","async":true,"min_sup":8,"correction":"permutation","permutations":100,"seed":3,"alpha":{alpha}}}"#
        )
    };
    let load_line = format!(
        r#"{{"id":"load","cmd":"load","path":"{}"}}"#,
        path.to_str().unwrap()
    );
    let script = format!(
        "{}\n{}\n{}\n{}\n{}\n{}\n",
        load_line,
        correct("q1", 0.05),
        correct("q2", 0.01),
        correct("q3", 0.1),
        correct("q4", 0.2),
        r#"{"id":"bye","cmd":"shutdown"}"#,
    );
    let responses = serve_session(&script);
    assert_eq!(responses.len(), 6);
    for resp in &responses {
        assert_ok(resp);
    }
    // However the four concurrent queries interleave, the once-cell caches
    // guarantee the rule set was mined once and the null collected once.
    let cold_nulls = ["q1", "q2", "q3", "q4"]
        .iter()
        .filter(|id| {
            by_id(&responses, id)
                .get("null_cached")
                .and_then(Json::as_bool)
                == Some(false)
        })
        .count();
    assert_eq!(cold_nulls, 1, "exactly one query collects the null");
    let cold_mines = ["q1", "q2", "q3", "q4"]
        .iter()
        .filter(|id| {
            by_id(&responses, id)
                .get("mined_cached")
                .and_then(Json::as_bool)
                == Some(false)
        })
        .count();
    assert_eq!(cold_mines, 1, "exactly one query mines");
    // All four agree on the hypothesis count (same rule set underneath).
    let tests: Vec<_> = ["q1", "q2", "q3", "q4"]
        .iter()
        .map(|id| {
            by_id(&responses, id)
                .get("hypothesis_tests")
                .and_then(Json::as_u64)
        })
        .collect();
    assert!(tests.windows(2).all(|w| w[0] == w[1]), "{tests:?}");
}

#[test]
fn serve_reports_errors_and_keeps_running() {
    let path = fixture();
    let load_line = format!(
        r#"{{"id":"ok","cmd":"load","path":"{}"}}"#,
        path.to_str().unwrap()
    );
    let script = format!(
        "{}\n{}\n{}\n{}\n",
        r#"{"id":"e1","cmd":"correct"}"#,
        r#"{"id":"e2","cmd":"correct","correction":"nope"}"#,
        load_line,
        r#"{"id":"bye","cmd":"shutdown"}"#,
    );
    let responses = serve_session(&script);
    assert_eq!(responses.len(), 4);
    let e1 = by_id(&responses, "e1");
    assert_eq!(e1.get("ok").and_then(Json::as_bool), Some(false));
    assert!(e1
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("no dataset loaded"));
    // e2 errors because no dataset is loaded yet (requests before the load
    // barrier); the message still proves errors do not kill the session.
    let e2 = by_id(&responses, "e2");
    assert_eq!(e2.get("ok").and_then(Json::as_bool), Some(false));
    assert_ok(by_id(&responses, "ok"));
    assert_ok(by_id(&responses, "bye"));
}

#[test]
fn serve_subcommand_via_run_points_at_the_binary() {
    // The buffered library entry point cannot stream; it must explain that
    // rather than misbehave.
    let outcome = sigrule_cli::run(&["serve".to_string()]);
    assert_eq!(outcome.exit_code, 2);
    assert!(outcome.stderr.contains("interactive"));
}
