//! Implementation of the `sigrule` command-line tool.
//!
//! The binary is a thin wrapper around [`run`]; the logic lives in a library
//! crate so the end-to-end tests can build the expected output through
//! exactly the same code paths the binary uses.
//!
//! Three subcommands cover the workflow of the paper (*Controlling False
//! Positives in Association Rule Mining*, Liu, Zhang, Wong, PVLDB 2011):
//!
//! * `sigrule mine` — load a CSV/TSV or market-basket dataset, mine class
//!   association rules, apply one correction approach, report the
//!   significant rules;
//! * `sigrule correct` — mine once, run **every** correction approach, and
//!   print a comparison table;
//! * `sigrule bench` — time each pipeline stage on a file or on synthetic
//!   data;
//! * `sigrule eval` — planted-truth benchmark sweeps: synthetic datasets ×
//!   corrections × α, scored against the embedded rules (see [`eval`]);
//! * `sigrule serve` — a resident engine process answering JSON-line
//!   requests over a dataset loaded once (see [`serve`]).
//!
//! ```
//! use sigrule_cli::{run, RunOutcome};
//!
//! // A malformed invocation is reported on stderr with exit code 2.
//! let outcome = run(&["mine".to_string(), "--bogus".to_string(), "1".to_string()]);
//! assert_eq!(outcome.exit_code, 2);
//! assert!(outcome.stderr.contains("unknown option"));
//!
//! // `help` prints the usage text.
//! let outcome = run(&["help".to_string()]);
//! assert_eq!(outcome.exit_code, 0);
//! assert!(outcome.stdout.contains("sigrule mine"));
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod args;
pub mod commands;
pub mod eval;
pub mod json;
pub mod output;
pub mod serve;

use args::{ArgMap, CommonOpts};
use commands::CliError;

/// The usage text printed by `sigrule help` and on usage errors.
pub const USAGE: &str = "\
sigrule — statistically sound class association rule mining
(reproduction of Liu, Zhang, Wong: Controlling False Positives in
Association Rule Mining, PVLDB 2011)

USAGE:
  sigrule mine    --input <file> [options]   mine + one correction approach
  sigrule correct --input <file> [options]   compare all correction approaches
  sigrule bench   [--input <file>] [options] time every pipeline stage
  sigrule eval    [--grid k=v1,v2 ...]       planted-truth benchmark sweep:
                                             seeded synthetic datasets ×
                                             corrections × α, scored against
                                             the planted rules (docs/EVAL.md)
  sigrule serve   [--listen <addr>]          resident multi-dataset engine:
                                             JSON lines on stdin/stdout, or a
                                             concurrent TCP/unix socket server
                                             (see sigrule serve --help and
                                             docs/SERVE.md)
  sigrule client  --connect <addr>           pipe stdin JSON lines to a served
                                             process (tcp:HOST:PORT|unix:PATH)
  sigrule help                               print this text

INPUT (format auto-detected by default):
  --input <file>        dataset file to load
  --input-format <f>    rows | basket | auto (default auto: extension, then
                        content sniffing)
  --class <name|index>  rows: class column (default: the last column)
  --separator <char>    rows: column separator (default ,)
  --tsv                 rows: tab-separated input
  --no-header           rows: first row is data; columns are named A0, A1, ...
  --default-class <c>   basket: class for transactions without a label: token
  --strict              treat loader warnings (blank lines, empty
                        transactions) as errors: nonzero exit instead of
                        stderr-only messages

  Basket files carry one transaction per line: item tokens separated by
  whitespace and/or commas, plus an optional `label:<class>` token.

MINING:
  --min-sup <n>         minimum support (default: 1% of records, at least 2)
  --min-conf <f>        minimum confidence filter (default 0, as in the paper)
  --max-length <n>      cap on rule length
  --all-patterns        test all frequent patterns, not only closed ones

CORRECTION (mine only):
  --correction <name>   none | bonferroni | bh | permutation | holdout
                        (default bonferroni)
  --metric <name>       fwer | fdr (default fwer; implied by bonferroni/bh)

SHARED:
  --alpha <f>           significance level (default 0.05)
  --permutations <n>    permutation count (default 1000)
  --seed <n>            RNG seed for permutation/holdout (default 17)
  --threads <n>         worker threads for the permutation engine
  --workers <list>      correct: scatter the cold permutation null across
                        remote `sigrule serve` processes (comma list of
                        tcp:HOST:PORT|unix:PATH); statistics stay
                        bit-identical, lost workers cost time, never answers
  --format <name>       human | json | csv (default human)
  --top <n>             rules shown in reports (default 20; 0 = all)

BENCH (synthetic input when --input is omitted):
  --records <n>         synthetic records (default 2000)
  --attributes <n>      synthetic attributes (default 20)
  --rules <n>           embedded rules (default 2)

EVAL (all flags optional; sweep semantics in docs/EVAL.md):
  --grid k=v1,v2 ...    grid axes: rows, noise, rules, coverage, alpha
                        (defaults rows=1000 noise=0.2 rules=2 coverage=0.15)
  --corrections <list>  comma list of none | bonferroni | bh | direct[:m] |
                        permutation | holdout (default none,direct,permutation)
  --workload <name>     rows | basket (default rows)
  --reps <n>            seeded replicates per cell (default 3)
  --attributes <n>      rows workload: attribute count (default 12)
  --items <n>           basket workload: catalogue size (default 60)
  --min-sup-frac <f>    minimum support as a fraction of rows (default 0.05)
  (--alpha, --seed, --permutations, --threads, --format as in SHARED;
   eval's --permutations defaults to 300)

Exit codes: 0 success, 1 runtime error (e.g. malformed input file), 2 usage.
";

/// What one invocation produced: the streams to print and the exit code.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Text for stdout.
    pub stdout: String,
    /// Text for stderr.
    pub stderr: String,
    /// Process exit code (0 ok, 1 runtime error, 2 usage error).
    pub exit_code: i32,
}

impl RunOutcome {
    fn ok(stdout: String) -> Self {
        RunOutcome {
            stdout,
            stderr: String::new(),
            exit_code: 0,
        }
    }

    fn usage_error(message: &str) -> Self {
        RunOutcome {
            stdout: String::new(),
            stderr: format!("sigrule: error: {message}\n\n{USAGE}"),
            exit_code: 2,
        }
    }

    fn runtime_error(message: &str) -> Self {
        RunOutcome {
            stdout: String::new(),
            stderr: format!("sigrule: error: {message}\n"),
            exit_code: 1,
        }
    }
}

/// Runs one invocation; `argv` excludes the program name.
pub fn run(argv: &[String]) -> RunOutcome {
    let Some(command) = argv.first().map(String::as_str) else {
        return RunOutcome::usage_error("no subcommand given");
    };
    if matches!(command, "help" | "--help" | "-h") {
        return RunOutcome::ok(USAGE.to_string());
    }
    let rest = &argv[1..];
    // `eval` parses its own arguments: `--grid` consumes bare axis tokens
    // that the strict flag parser below would reject as positionals.
    if command == "eval" {
        return eval::run_eval(rest);
    }
    let parsed = match ArgMap::parse(rest, CommonOpts::SWITCHES) {
        Ok(parsed) => parsed,
        Err(e) => return RunOutcome::usage_error(&e.0),
    };
    if parsed.has("help") {
        return RunOutcome::ok(USAGE.to_string());
    }
    let result = match command {
        "mine" => commands::mine(&parsed),
        "correct" => commands::correct(&parsed),
        "bench" => commands::bench(&parsed),
        "serve" => {
            return RunOutcome::usage_error(
                "serve is interactive: it reads JSON-line requests on stdin or a socket, \
                 so it only runs from the sigrule binary (see docs/SERVE.md)",
            )
        }
        "client" => {
            return RunOutcome::usage_error(
                "client is interactive: it pipes stdin to a served process, so it only \
                 runs from the sigrule binary (see docs/SERVE.md)",
            )
        }
        other => {
            return RunOutcome::usage_error(&format!(
                "unknown subcommand {other:?} (expected mine, correct, bench, eval, \
                 serve, client or help)"
            ))
        }
    };
    match result {
        Ok(report) => {
            let format = match CommonOpts::from_args(&parsed) {
                Ok(opts) => opts.format,
                Err(_) => args::Format::Human,
            };
            let mut outcome = RunOutcome::ok(report.render(format));
            // Warnings are structured JSON-line log events (not bare
            // `sigrule: warning:` prose), rendered unconditionally — they
            // were always shown, so the SIGRULE_LOG filter does not gate
            // them.  Stdout stays byte-identical either way.
            outcome.stderr = report
                .warnings
                .iter()
                .map(|w| {
                    let mut line = sigrule_obs::log::render_event(
                        sigrule_obs::log::Level::Warn,
                        "sigrule::cli",
                        "warning",
                        &[("detail", w.as_str().into())],
                    );
                    line.push('\n');
                    line
                })
                .collect();
            outcome
        }
        Err(CliError::Usage(e)) => RunOutcome::usage_error(&e.0),
        Err(CliError::Runtime(message)) => RunOutcome::runtime_error(&message),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn no_subcommand_is_a_usage_error() {
        let outcome = run(&[]);
        assert_eq!(outcome.exit_code, 2);
        assert!(outcome.stderr.contains("no subcommand"));
    }

    #[test]
    fn unknown_subcommand_is_a_usage_error() {
        let outcome = run(&argv(&["transmogrify"]));
        assert_eq!(outcome.exit_code, 2);
        assert!(outcome.stderr.contains("transmogrify"));
    }

    #[test]
    fn missing_input_is_a_usage_error() {
        let outcome = run(&argv(&["mine"]));
        assert_eq!(outcome.exit_code, 2);
        assert!(outcome.stderr.contains("--input"));
    }

    #[test]
    fn missing_file_is_a_runtime_error() {
        let outcome = run(&argv(&["mine", "--input", "/nonexistent/x.csv"]));
        assert_eq!(outcome.exit_code, 1);
        assert!(outcome.stderr.contains("/nonexistent/x.csv"));
    }

    #[test]
    fn bench_runs_on_synthetic_data() {
        let outcome = run(&argv(&[
            "bench",
            "--records",
            "200",
            "--attributes",
            "6",
            "--permutations",
            "20",
            "--format",
            "json",
        ]));
        assert_eq!(outcome.exit_code, 0, "stderr: {}", outcome.stderr);
        assert!(outcome.stdout.contains("\"command\":\"bench\""));
        assert!(outcome.stdout.contains("Perm_FWER"));
    }
}
