//! The `sigrule eval` subcommand: planted-truth benchmark sweeps.
//!
//! Thin argument-parsing shell around [`sigrule_eval::sweep`]: build a
//! [`SweepGrid`] from `--grid` axes and flags, run it (under a pinned rayon
//! pool when `--threads` is given), and render the cells as a [`Report`].
//!
//! The machine-readable output (`--format json|csv`) contains no timings or
//! cache counters, so it is bit-identical across thread counts and warm/cold
//! engine caches — the determinism tests compare the rendered bytes
//! directly.  The human format appends one footer line with the null
//! collection wall-clock and the active support-kernel counters, so kernel
//! regressions show up in the harness users already run.

use crate::args::{ArgMap, Format, UsageError};
use crate::output::Report;
use crate::RunOutcome;
use sigrule_eval::sweep::{CorrectionSpec, SweepGrid, SweepRunner, Workload};

/// Value-taking flags `eval` accepts (besides the repeatable `--grid`).
const VALUE_FLAGS: &[&str] = &[
    "grid",
    "corrections",
    "workload",
    "reps",
    "seed",
    "permutations",
    "alpha",
    "threads",
    "format",
    "attributes",
    "items",
    "min-sup-frac",
];

/// Runs `sigrule eval` with the arguments after the subcommand name.
pub fn run_eval(argv: &[String]) -> RunOutcome {
    // `--grid rows=500,2000 noise=0.1,0.3` carries bare `key=v1,v2` tokens
    // after the flag; collect them before the strict flag parser (which
    // rejects positionals) sees them.
    let mut axes: Vec<String> = Vec::new();
    let mut rest: Vec<String> = Vec::new();
    let mut it = argv.iter().peekable();
    while let Some(arg) = it.next() {
        if arg == "--grid" || arg.starts_with("--grid=") {
            let mut got_axis = false;
            if let Some(inline) = arg.strip_prefix("--grid=") {
                axes.push(inline.to_string());
                got_axis = true;
            }
            while let Some(next) = it.peek() {
                if next.starts_with("--") {
                    break;
                }
                axes.push((*next).clone());
                it.next();
                got_axis = true;
            }
            if !got_axis {
                return RunOutcome::usage_error("--grid needs at least one key=v1,v2,... axis");
            }
        } else {
            rest.push(arg.clone());
        }
    }
    let parsed = match ArgMap::parse(&rest, &["help"]) {
        Ok(parsed) => parsed,
        Err(e) => return RunOutcome::usage_error(&e.0),
    };
    if parsed.has("help") {
        return RunOutcome::ok(crate::USAGE.to_string());
    }
    if let Err(e) = parsed.reject_unknown(VALUE_FLAGS) {
        return RunOutcome::usage_error(&e.0);
    }
    let (grid, threads, format) = match build_grid(&parsed, &axes) {
        Ok(built) => built,
        Err(e) => return RunOutcome::usage_error(&e.0),
    };

    let runner = SweepRunner::new();
    let sweep = {
        let run = || runner.run(&grid);
        match threads {
            Some(n) => {
                let pool = match rayon::ThreadPoolBuilder::new().num_threads(n).build() {
                    Ok(pool) => pool,
                    Err(e) => return RunOutcome::runtime_error(&format!("thread pool: {e}")),
                };
                pool.install(run)
            }
            None => run(),
        }
    };
    let sweep = match sweep {
        Ok(sweep) => sweep,
        Err(sigrule_eval::SweepError::Grid(msg)) => return RunOutcome::usage_error(&msg),
        Err(e) => return RunOutcome::runtime_error(&e.to_string()),
    };

    let mut report = Report::new("eval");
    report.add("workload", grid.workload.label());
    report.add("rows", join(&grid.rows));
    report.add("noise", join(&grid.noise));
    report.add("rules", join(&grid.rules));
    report.add("coverage", join(&grid.coverage));
    report.add("alpha", join(&grid.alphas));
    report.add(
        "corrections",
        grid.corrections
            .iter()
            .map(correction_label)
            .collect::<Vec<_>>()
            .join(","),
    );
    report.add("reps", grid.reps);
    report.add("seed", grid.seed);
    report.add("permutations", grid.permutations);
    report.add("min_sup_frac", grid.min_sup_frac);
    report.add("datasets", grid.n_datasets());
    report.add("cells", sweep.cells.len());
    report.tables.push(sweep.to_table());
    let mut rendered = report.render(format);
    if format == Format::Human {
        // Timings and kernel counters live only in the human footer: the
        // machine-readable formats stay bit-identical across kernels, thread
        // counts and cache states.
        let counters = sigrule_data::kernel::counters();
        rendered.push_str(&format!(
            "null_ms={:.1} kernel={} batched_sweeps={} per_perm_sweeps={} (human-format footer; not in json/csv)\n",
            sweep.cache.null_time.as_secs_f64() * 1e3,
            counters.kernel,
            counters.batched_sweeps,
            counters.per_perm_sweeps,
        ));
        // A second footer line only when a distributed null ran in this
        // process: how the shards landed and how often ranges were
        // re-dispatched.  Same convention — human format only, so json/csv
        // stay bit-identical whether or not work was scattered.
        let shards = sigrule::correction::permutation::shard_counters::counters();
        if shards.distribution_active() {
            rendered.push_str(&format!(
                "shards_local={} shards_remote={} shard_retries={} remote_ms={} (distributed null; human-format footer)\n",
                shards.shards_local,
                shards.shards_remote,
                shards.shard_retries,
                shards.remote_ms,
            ));
        }
    }
    // The same counters, as a structured event for every format — the
    // human footer stays human, json/csv stay byte-identical, and machine
    // consumers read the numbers off stderr under SIGRULE_LOG=debug.
    {
        let counters = sigrule_data::kernel::counters();
        let shards = sigrule::correction::permutation::shard_counters::counters();
        sigrule_obs::log::debug(
            "sigrule::eval",
            "sweep complete",
            &[
                ("cells", (sweep.cells.len() as u64).into()),
                (
                    "null_ms",
                    (sweep.cache.null_time.as_secs_f64() * 1e3).into(),
                ),
                ("batched_sweeps", counters.batched_sweeps.into()),
                ("per_perm_sweeps", counters.per_perm_sweeps.into()),
                ("shards_local", shards.shards_local.into()),
                ("shards_remote", shards.shards_remote.into()),
                ("shard_retries", shards.shard_retries.into()),
            ],
        );
    }
    RunOutcome::ok(rendered)
}

/// Builds the grid (defaults → flags → `--grid` axes, later wins) plus the
/// thread pin and output format.
fn build_grid(
    parsed: &ArgMap,
    axes: &[String],
) -> Result<(SweepGrid, Option<usize>, Format), UsageError> {
    let mut grid = SweepGrid::default();
    if let Some(name) = parsed.get("workload") {
        grid.workload = Workload::parse(name).map_err(UsageError)?;
    }
    if let Some(list) = parsed.get("corrections") {
        grid.corrections = CorrectionSpec::parse_list(list)
            .map_err(|e| UsageError(format!("--corrections: {e}")))?;
    }
    if let Some(reps) = parsed.get_parsed("reps")? {
        grid.reps = reps;
    }
    if let Some(seed) = parsed.get_parsed("seed")? {
        grid.seed = seed;
    }
    if let Some(n) = parsed.get_parsed("permutations")? {
        grid.permutations = n;
    }
    if let Some(alpha) = parsed.get_parsed::<f64>("alpha")? {
        grid.alphas = vec![alpha];
    }
    if let Some(n) = parsed.get_parsed("attributes")? {
        grid.attributes = n;
    }
    if let Some(n) = parsed.get_parsed("items")? {
        grid.items = n;
    }
    if let Some(f) = parsed.get_parsed("min-sup-frac")? {
        grid.min_sup_frac = f;
    }
    for axis in axes {
        grid.apply_axis(axis)
            .map_err(|e| UsageError(format!("--grid: {e}")))?;
    }
    grid.validate().map_err(UsageError)?;
    let threads = parsed.get_parsed::<usize>("threads")?;
    if threads == Some(0) {
        return Err(UsageError("--threads must be at least 1".into()));
    }
    let format = match parsed.get("format") {
        Some(name) => Format::parse(name)?,
        None => Format::Human,
    };
    Ok((grid, threads, format))
}

/// `approach:metric` summary label, e.g. `permutation:fwer`.
fn correction_label(spec: &CorrectionSpec) -> String {
    format!(
        "{}:{}",
        spec.label(),
        spec.metric.label().to_ascii_lowercase()
    )
}

/// Comma-joins axis values with their `Display` form.
fn join<T: std::fmt::Display>(values: &[T]) -> String {
    values
        .iter()
        .map(T::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn grid_flag_consumes_bare_axis_tokens() {
        let outcome = run_eval(&argv(&[
            "--grid",
            "rows=120",
            "noise=0.1",
            "--corrections",
            "none",
            "--reps",
            "1",
            "--permutations",
            "10",
            "--attributes",
            "6",
            "--format",
            "json",
        ]));
        assert_eq!(outcome.exit_code, 0, "stderr: {}", outcome.stderr);
        assert!(outcome.stdout.contains("\"command\":\"eval\""));
        assert!(outcome.stdout.contains("\"rows\":\"120\""));
    }

    #[test]
    fn human_footer_reports_kernel_counters_but_json_stays_clean() {
        let args = [
            "--grid",
            "rows=120",
            "noise=0.1",
            "--corrections",
            "none",
            "--reps",
            "1",
            "--permutations",
            "10",
            "--attributes",
            "6",
        ];
        let human = run_eval(&argv(&args));
        assert_eq!(human.exit_code, 0, "stderr: {}", human.stderr);
        assert!(human.stdout.contains("null_ms="), "human footer missing");
        assert!(human.stdout.contains("kernel="), "kernel kind missing");
        let mut json_args: Vec<&str> = args.to_vec();
        json_args.extend(["--format", "json"]);
        let json = run_eval(&argv(&json_args));
        assert_eq!(json.exit_code, 0);
        assert!(
            !json.stdout.contains("null_ms"),
            "timings must stay out of machine-readable output"
        );
    }

    #[test]
    fn human_footer_adds_shard_counters_when_distribution_ran() {
        // The counters are process-wide and additive, so simulating a
        // scattered null here is safe for every other test: they only ever
        // assert presence, not exact values.
        sigrule::correction::permutation::shard_counters::note_local_shards(3);
        sigrule::correction::permutation::shard_counters::note_remote_shards(2, 40);
        sigrule::correction::permutation::shard_counters::note_retries(1);
        let args = [
            "--grid",
            "rows=120",
            "noise=0.1",
            "--corrections",
            "none",
            "--reps",
            "1",
            "--permutations",
            "10",
            "--attributes",
            "6",
        ];
        let human = run_eval(&argv(&args));
        assert_eq!(human.exit_code, 0, "stderr: {}", human.stderr);
        assert!(
            human.stdout.contains("shards_remote="),
            "shard footer missing: {}",
            human.stdout
        );
        assert!(human.stdout.contains("shard_retries="));
        let mut json_args: Vec<&str> = args.to_vec();
        json_args.extend(["--format", "json"]);
        let json = run_eval(&argv(&json_args));
        assert_eq!(json.exit_code, 0);
        assert!(
            !json.stdout.contains("shards_"),
            "shard counters must stay out of machine-readable output"
        );
    }

    #[test]
    fn empty_grid_flag_is_a_usage_error() {
        let outcome = run_eval(&argv(&["--grid", "--reps", "1"]));
        assert_eq!(outcome.exit_code, 2);
        assert!(outcome.stderr.contains("--grid"));
    }

    #[test]
    fn bad_axis_and_bad_correction_are_usage_errors() {
        let outcome = run_eval(&argv(&["--grid", "bogus=1"]));
        assert_eq!(outcome.exit_code, 2);
        assert!(outcome.stderr.contains("unknown grid axis"));
        let outcome = run_eval(&argv(&["--corrections", "what"]));
        assert_eq!(outcome.exit_code, 2);
        assert!(outcome.stderr.contains("--corrections"));
        let outcome = run_eval(&argv(&["--threads", "0"]));
        assert_eq!(outcome.exit_code, 2);
    }
}
