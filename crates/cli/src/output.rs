//! Rendering a command's result in the three output formats.
//!
//! Every subcommand produces a [`Report`]: a summary (ordered key → value
//! pairs) plus one or more [`Table`]s.  `--format human` prints the summary
//! followed by aligned tables, `--format json` emits one JSON document, and
//! `--format csv` concatenates the tables as CSV.

use crate::args::Format;
use sigrule::rule::sort_by_significance;
use sigrule::{ClassRule, PipelineRun};
use sigrule_eval::report::{fmt_float, json_string, Table};

/// A subcommand's printable result.
#[derive(Debug, Clone)]
pub struct Report {
    /// The subcommand that produced the report (`mine`, `correct`, `bench`).
    pub command: String,
    /// Ordered key → value summary pairs.
    pub summary: Vec<(String, String)>,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Non-fatal warnings, printed to stderr (never into the formatted
    /// output, so JSON/CSV stay machine-readable).
    pub warnings: Vec<String>,
}

impl Report {
    /// Creates an empty report for a subcommand.
    pub fn new(command: &str) -> Self {
        Report {
            command: command.to_string(),
            summary: Vec::new(),
            tables: Vec::new(),
            warnings: Vec::new(),
        }
    }

    /// Appends a summary pair.
    pub fn add(&mut self, key: &str, value: impl ToString) {
        self.summary.push((key.to_string(), value.to_string()));
    }

    /// Renders the report in the requested format.
    pub fn render(&self, format: Format) -> String {
        match format {
            Format::Human => self.render_human(),
            Format::Json => self.render_json(),
            Format::Csv => self.render_csv(),
        }
    }

    fn render_human(&self) -> String {
        let mut out = String::new();
        let key_width = self.summary.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        for (key, value) in &self.summary {
            out.push_str(&format!("{key:<key_width$}  {value}\n"));
        }
        for table in &self.tables {
            out.push('\n');
            out.push_str(&table.render());
        }
        out
    }

    fn render_json(&self) -> String {
        let summary: Vec<String> = self
            .summary
            .iter()
            .map(|(k, v)| format!("{}:{}", json_string(k), json_string(v)))
            .collect();
        let tables: Vec<String> = self.tables.iter().map(Table::to_json).collect();
        format!(
            "{{\"command\":{},\"summary\":{{{}}},\"tables\":[{}]}}\n",
            json_string(&self.command),
            summary.join(","),
            tables.join(",")
        )
    }

    fn render_csv(&self) -> String {
        let mut out = String::new();
        for (i, table) in self.tables.iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            out.push_str(&table.to_csv());
        }
        out
    }
}

/// Builds the significant-rules table of a pipeline run: rules sorted by
/// ascending p-value, capped at `top` rows (0 = no cap).
///
/// This is the table the end-to-end tests compare against the library API,
/// so the CLI binary and the test build it through the same code.
pub fn significant_rules_table(run: &PipelineRun, top: usize) -> Table {
    let mut rules: Vec<ClassRule> = run
        .result
        .significant_rules()
        .into_iter()
        .cloned()
        .collect();
    sort_by_significance(&mut rules);
    let shown = if top == 0 {
        rules.len()
    } else {
        top.min(rules.len())
    };
    let mut table = Table::new(
        format!(
            "{} significant rules ({} shown), method {}",
            rules.len(),
            shown,
            run.result.method
        ),
        vec![
            "rule",
            "class",
            "coverage",
            "support",
            "confidence",
            "p_value",
        ],
    );
    let space = run.mined.item_space();
    for rule in rules.iter().take(shown) {
        let lhs: Vec<String> = rule
            .pattern
            .items()
            .iter()
            .map(|&i| space.describe_item(i))
            .collect();
        table.push_row(vec![
            lhs.join(" AND "),
            space.class_name(rule.class).unwrap_or("?").to_string(),
            rule.coverage.to_string(),
            rule.support.to_string(),
            format!("{:.4}", rule.confidence()),
            format!("{:.6e}", rule.p_value),
        ]);
    }
    table
}

/// Builds the one-row-per-method comparison table used by `sigrule correct`.
pub fn method_summary_row(result: &sigrule::CorrectionResult, millis: f64) -> Vec<String> {
    vec![
        result.method.clone(),
        result.metric.label().to_string(),
        fmt_float(result.alpha),
        result.n_tests.to_string(),
        result.n_significant().to_string(),
        result
            .p_value_cutoff
            .map(|c| format!("{c:.6e}"))
            .unwrap_or_else(|| "-".to_string()),
        format!("{millis:.1}"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_formats() {
        let mut report = Report::new("mine");
        report.add("records", 10);
        report.add("alpha", "0.05");
        let mut t = Table::new("demo", vec!["a"]);
        t.push_row(vec!["1".into()]);
        report.tables.push(t);

        let human = report.render(Format::Human);
        assert!(human.contains("records  10"));
        assert!(human.contains("# demo"));

        let json = report.render(Format::Json);
        assert!(json.starts_with("{\"command\":\"mine\""));
        assert!(json.contains("\"summary\":{\"records\":\"10\",\"alpha\":\"0.05\"}"));
        assert!(json.contains("\"tables\":[{\"title\":\"demo\""));

        let csv = report.render(Format::Csv);
        assert!(csv.starts_with("a\n1\n"));
    }
}
