//! The `sigrule` binary: parse the command line, run the subcommand, print,
//! exit with 0 (success), 1 (runtime error) or 2 (usage error).

use std::io::Write;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    // `serve` and `client` are interactive (JSON lines streamed as requests
    // complete), so they bypass the buffered RunOutcome path the one-shot
    // subcommands use.
    if argv.first().map(String::as_str) == Some("serve") {
        std::process::exit(sigrule_cli::serve::run_serve(&argv[1..]));
    }
    if argv.first().map(String::as_str) == Some("client") {
        std::process::exit(sigrule_cli::serve::run_client(&argv[1..]));
    }
    let outcome = sigrule_cli::run(&argv);
    if !outcome.stdout.is_empty() {
        print!("{}", outcome.stdout);
    }
    if !outcome.stderr.is_empty() {
        let _ = write!(std::io::stderr(), "{}", outcome.stderr);
    }
    std::process::exit(outcome.exit_code);
}
