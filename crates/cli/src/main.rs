//! The `sigrule` binary: parse the command line, run the subcommand, print,
//! exit with 0 (success), 1 (runtime error) or 2 (usage error).

use std::io::Write;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let outcome = sigrule_cli::run(&argv);
    if !outcome.stdout.is_empty() {
        print!("{}", outcome.stdout);
    }
    if !outcome.stderr.is_empty() {
        let _ = write!(std::io::stderr(), "{}", outcome.stderr);
    }
    std::process::exit(outcome.exit_code);
}
