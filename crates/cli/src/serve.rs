//! `sigrule serve` / `sigrule client`: the resident server process and its
//! line-pipe client.
//!
//! The server core — the multi-dataset
//! [`EngineRegistry`](sigrule_server::EngineRegistry), the JSON-lines
//! protocol and the transports — lives in [`sigrule_server`]; this module is
//! the command-line front:
//!
//! * `sigrule serve` (no flags) runs the single-connection stdin/stdout
//!   loop, exactly as before the socket transports existed.
//! * `sigrule serve --listen tcp:HOST:PORT|unix:PATH` binds a socket and
//!   accepts many concurrent clients over the shared registry.  The first
//!   stdout line is a ready line carrying the bound address (with the real
//!   port when `tcp:...:0` asked for an ephemeral one).
//! * `sigrule client --connect tcp:HOST:PORT|unix:PATH` pipes stdin request
//!   lines to a served process and response lines to stdout.
//!
//! See `docs/SERVE.md` for the protocol reference and sample sessions.

use sigrule_server::json::ObjectBuilder;
use sigrule_server::proto::ServerOptions;
use sigrule_server::transport::{serve_listener, serve_streams_with, ListenAddr, ServerConfig};
use std::io::Write;

// Compatibility re-exports: the serve core moved to `sigrule_server`.
pub use sigrule_server::proto::{handle_line, ServerState};
pub use sigrule_server::transport::serve_streams;

/// Usage text for `sigrule serve --help`.
pub const SERVE_USAGE: &str = "\
sigrule serve — resident multi-dataset engine speaking JSON lines

USAGE:
  sigrule serve [options]

OPTIONS:
  --listen <addr>          accept concurrent clients on a socket instead of
                           stdin/stdout: tcp:HOST:PORT (port 0 = ephemeral,
                           reported in the ready line) or unix:PATH
  --max-connections <n>    socket mode: simultaneous client cap (default 64)
  --cache-budget-mb <n>    evict least-recently-used cached rule sets /
                           permutation nulls once resident cache bytes
                           exceed n MiB (default: unbounded)
  --slow-query-ms <n>      log a structured slow-query record (stderr, JSON
                           lines, with the per-phase breakdown) for any
                           mine/correct slower than n ms (default: off)

Structured logs go to stderr as JSON lines; filter with SIGRULE_LOG
(error|warn|info|debug, per-target overrides like
SIGRULE_LOG=info,sigrule::coordinate=debug).  SIGRULE_METRICS=off disables
metric collection.

One JSON object per line in, one per line out.  Requests:
  {\"cmd\":\"load\",\"path\":\"data.basket\",\"name\":\"a\"}   load + register a dataset
  {\"cmd\":\"mine\",\"dataset\":\"a\",\"min_sup\":10}        mine + cache a rule set
  {\"cmd\":\"correct\",\"dataset\":\"a\",\"correction\":\"permutation\",\"alpha\":0.05}
                                                   correct (cached when warm)
  {\"cmd\":\"perm_shard\",\"dataset\":\"a\",\"start\":0,\"end\":64}
                                                   collect one permutation range
                                                   (distributed-null worker)
  {\"cmd\":\"stats\",\"dataset\":\"a\"}                     one dataset's cache stats
  {\"cmd\":\"registry_stats\"}                          every dataset + totals
  {\"cmd\":\"metrics\"}                                 Prometheus exposition of the
                                                   process metrics (or
                                                   \"format\":\"json\")
  {\"cmd\":\"shutdown\"}                                drain all clients and exit

`name`/`dataset` default to \"default\", so single-dataset sessions can omit
them.  See docs/SERVE.md for the full field reference and sample sessions.
";

/// Usage text for `sigrule client --help`.
pub const CLIENT_USAGE: &str = "\
sigrule client — pipe JSON-line requests to a served sigrule process

USAGE:
  sigrule client --connect <addr> [--retries <n>]

OPTIONS:
  --connect <addr>    the served address: tcp:HOST:PORT or unix:PATH
  --retries <n>       retry each request up to n times on transient errors
                      (\"error_kind\":\"transient\": deadline_exceeded,
                      overloaded, shutting_down, internal) with exponential
                      backoff and jitter, honouring the server's
                      retry_after_ms hint.  Implies request/response
                      lockstep: each line waits for its answer before the
                      next is sent.  Default: 0 (forward as-is, no retries)

Request lines are read from stdin and forwarded as-is; response lines are
printed to stdout as they arrive.  On stdin end-of-file the write side is
half-closed: pending responses still stream back until the server closes
the connection.  See docs/SERVE.md for the protocol and the error taxonomy.
";

/// Parsed `serve` flags.
struct ServeArgs {
    listen: Option<ListenAddr>,
    config: ServerConfig,
}

fn flag_value<'a>(argv: &'a [String], i: usize, name: &str) -> Result<&'a str, String> {
    argv.get(i + 1)
        .map(String::as_str)
        .ok_or_else(|| format!("{name} needs a value"))
}

fn parse_serve_args(argv: &[String]) -> Result<ServeArgs, String> {
    let mut listen = None;
    let mut config = ServerConfig::default();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--listen" => {
                listen = Some(ListenAddr::parse(flag_value(argv, i, "--listen")?)?);
            }
            "--max-connections" => {
                let n: usize = flag_value(argv, i, "--max-connections")?
                    .parse()
                    .map_err(|_| "--max-connections must be a positive integer".to_string())?;
                if n == 0 {
                    return Err("--max-connections must be at least 1".to_string());
                }
                config.max_connections = n;
            }
            "--cache-budget-mb" => {
                let n: usize = flag_value(argv, i, "--cache-budget-mb")?
                    .parse()
                    .map_err(|_| "--cache-budget-mb must be a non-negative integer".to_string())?;
                config.cache_budget_bytes = Some(n * 1024 * 1024);
            }
            "--slow-query-ms" => {
                let n: u64 = flag_value(argv, i, "--slow-query-ms")?
                    .parse()
                    .map_err(|_| "--slow-query-ms must be a non-negative integer".to_string())?;
                config.slow_query_ms = Some(n);
            }
            other => {
                return Err(format!("serve takes no option {other:?}"));
            }
        }
        i += 2;
    }
    Ok(ServeArgs { listen, config })
}

/// Entry point of `sigrule serve ARGS`: parses the flag surface and runs
/// either the stdin loop or a socket listener.
pub fn run_serve(argv: &[String]) -> i32 {
    if matches!(
        argv.first().map(String::as_str),
        Some("--help" | "-h" | "help")
    ) {
        print!("{SERVE_USAGE}");
        return 0;
    }
    let args = match parse_serve_args(argv) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("sigrule: error: {message}\n\n{SERVE_USAGE}");
            return 2;
        }
    };
    match args.listen {
        None => serve_streams_with(
            std::io::stdin().lock(),
            std::io::stdout(),
            ServerOptions {
                cache_budget_bytes: args.config.cache_budget_bytes,
                slow_query_ms: args.config.slow_query_ms,
            },
        ),
        Some(addr) => {
            let max_connections = args.config.max_connections;
            let outcome = serve_listener(&addr, &args.config, |bound| {
                // The ready line: machine-readable, first on stdout, so
                // scripts (and the e2e tests) learn the ephemeral port.
                let mut ready = ObjectBuilder::new();
                ready
                    .boolean("ok", true)
                    .string("listening", bound)
                    .number("max_connections", max_connections as f64);
                println!("{}", ready.finish());
                let _ = std::io::stdout().flush();
            });
            match outcome {
                Ok(code) => code,
                Err(e) => {
                    sigrule_obs::log::error(
                        "sigrule::serve",
                        "cannot serve",
                        &[
                            ("addr", addr.to_string().into()),
                            ("detail", e.to_string().into()),
                        ],
                    );
                    1
                }
            }
        }
    }
}

/// Entry point of `sigrule client ARGS`.
pub fn run_client(argv: &[String]) -> i32 {
    if matches!(
        argv.first().map(String::as_str),
        Some("--help" | "-h" | "help")
    ) {
        print!("{CLIENT_USAGE}");
        return 0;
    }
    let (addr, retries) = match parse_client_args(argv) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("sigrule: error: {message}\n\n{CLIENT_USAGE}");
            return 2;
        }
    };
    let input = std::io::BufReader::new(std::io::stdin());
    let piped = match retries {
        0 => sigrule_server::client::pipe_lines(&addr, input, std::io::stdout()),
        n => sigrule_server::client::pipe_lines_with_retry(
            &addr,
            input,
            std::io::stdout(),
            &sigrule_server::client::RetryPolicy::with_max_retries(n),
        ),
    };
    match piped {
        Ok(code) => code,
        Err(e) => {
            sigrule_obs::log::error(
                "sigrule::client",
                "cannot reach server",
                &[
                    ("addr", addr.to_string().into()),
                    ("detail", e.to_string().into()),
                ],
            );
            1
        }
    }
}

/// Parses `client` flags into the connect address and the retry budget.
fn parse_client_args(argv: &[String]) -> Result<(ListenAddr, u32), String> {
    let mut addr = None;
    let mut retries = 0u32;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--connect" => {
                addr = Some(ListenAddr::parse(flag_value(argv, i, "--connect")?)?);
            }
            "--retries" => {
                retries = flag_value(argv, i, "--retries")?
                    .parse()
                    .map_err(|_| "--retries must be a non-negative integer".to_string())?;
            }
            other => {
                return Err(format!("client takes no option {other:?}"));
            }
        }
        i += 2;
    }
    match addr {
        Some(addr) => Ok((addr, retries)),
        None => Err("client needs --connect <addr>".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn serve_flags_parse() {
        let args = parse_serve_args(&argv(&[
            "--listen",
            "tcp:127.0.0.1:0",
            "--max-connections",
            "8",
            "--cache-budget-mb",
            "64",
            "--slow-query-ms",
            "250",
        ]))
        .unwrap();
        assert_eq!(args.listen, Some(ListenAddr::Tcp("127.0.0.1:0".into())));
        assert_eq!(args.config.max_connections, 8);
        assert_eq!(args.config.cache_budget_bytes, Some(64 * 1024 * 1024));
        assert_eq!(args.config.slow_query_ms, Some(250));

        let default = parse_serve_args(&[]).unwrap();
        assert_eq!(default.listen, None);
        assert_eq!(default.config.cache_budget_bytes, None);
        assert_eq!(default.config.slow_query_ms, None);

        for bad in [
            argv(&["--bogus"]),
            argv(&["--listen"]),
            argv(&["--listen", "nope"]),
            argv(&["--max-connections", "0"]),
            argv(&["--cache-budget-mb", "lots"]),
            argv(&["--slow-query-ms", "soon"]),
        ] {
            assert!(parse_serve_args(&bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn client_requires_connect() {
        assert_eq!(run_client(&argv(&["--connect"])), 2);
        assert_eq!(run_client(&argv(&["--connect", "bogus"])), 2);
        assert_eq!(run_client(&argv(&[])), 2);
        assert_eq!(run_client(&argv(&["--retries", "3"])), 2);
    }

    #[test]
    fn client_flags_parse() {
        let (addr, retries) = parse_client_args(&argv(&[
            "--connect",
            "tcp:127.0.0.1:7878",
            "--retries",
            "4",
        ]))
        .unwrap();
        assert_eq!(addr, ListenAddr::Tcp("127.0.0.1:7878".into()));
        assert_eq!(retries, 4);
        let (_, default_retries) = parse_client_args(&argv(&["--connect", "unix:/tmp/s"])).unwrap();
        assert_eq!(default_retries, 0);
        for bad in [
            argv(&["--retries", "-1", "--connect", "tcp:h:1"]),
            argv(&["--retries", "many", "--connect", "tcp:h:1"]),
            argv(&["--connect", "tcp:h:1", "--bogus"]),
        ] {
            assert!(parse_client_args(&bad).is_err(), "{bad:?} should fail");
        }
    }
}
