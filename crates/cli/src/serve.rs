//! `sigrule serve`: a resident engine process speaking JSON lines.
//!
//! The one-shot subcommands re-load, re-mine and re-permute on every
//! invocation.  `serve` instead keeps an [`Engine`] resident: the dataset is
//! loaded once,
//! and repeated `correct` requests that only vary α, the error metric, or the
//! correction approach are answered from the engine's caches — bit-identical
//! to a cold run, with stage timings that show what was reused.
//!
//! # Protocol
//!
//! One JSON object per line on stdin, one JSON object per line on stdout.
//! Every request may carry an `"id"` field (any JSON value), echoed verbatim
//! in the response so concurrent responses can be matched to requests.
//! Requests:
//!
//! * `{"cmd":"load","path":"..."}` — load a dataset file (replacing any
//!   previous one).  Optional: `"format"` (`rows`/`basket`/`auto`),
//!   `"class"`, `"separator"`, `"tsv"`, `"no_header"`, `"default_class"`,
//!   `"strict"` (fail on loader warnings).
//! * `{"cmd":"mine"}` — mine (and cache) a rule set.  Optional:
//!   `"min_sup"` (default 1% of records, at least 2), `"min_conf"`,
//!   `"max_length"`, `"all_patterns"`.
//! * `{"cmd":"correct"}` — mine (via the cache) and apply one correction.
//!   The mine fields above, plus `"correction"` (`none`/`bonferroni`/`bh`/
//!   `permutation`/`holdout`, default `bonferroni`), `"metric"`
//!   (`fwer`/`fdr`), `"alpha"` (default 0.05), `"permutations"` (default
//!   1000), `"seed"` (default 17), `"threads"`, `"top"` (significant rules
//!   listed in the response; default 20, 0 = all).
//! * `{"cmd":"stats"}` — engine/cache statistics.
//! * `{"cmd":"shutdown"}` — acknowledge and exit.
//!
//! Responses carry `"ok":true` plus command-specific fields, or `"ok":false`
//! and an `"error"` message.  Requests are handled strictly in order by
//! default (so a repeat of the previous request is always warm); a `mine`,
//! `correct` or `stats` request carrying `"async":true` is instead handed to
//! a worker thread over the shared engine, letting many queries run
//! concurrently — match responses to requests by `"id"`.  `load` and
//! `shutdown` always act as barriers (they wait for in-flight workers
//! first).

use crate::json::{Json, JsonError, ObjectBuilder};
use sigrule::engine::{Engine, Loader, Query, QueryOutcome};
use sigrule::pipeline::CorrectionApproach;
use sigrule::rule::sort_by_significance;
use sigrule::{ClassRule, RuleMiningConfig};
use sigrule_data::loader::{BasketOptions, LoadOptions};
use sigrule_data::InputFormat;
use std::io::{BufRead, Write};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Usage text for `sigrule serve --help`.
pub const SERVE_USAGE: &str = "\
sigrule serve — resident engine speaking JSON lines on stdin/stdout

One JSON object per line in, one per line out.  Requests:
  {\"cmd\":\"load\",\"path\":\"data.basket\"}     load a dataset (once)
  {\"cmd\":\"mine\",\"min_sup\":10}              mine + cache a rule set
  {\"cmd\":\"correct\",\"correction\":\"permutation\",\"alpha\":0.05}
                                             correct (cached when warm)
  {\"cmd\":\"stats\"}                            cache statistics
  {\"cmd\":\"shutdown\"}                         exit

See docs/SERVE.md for the full field reference and a sample session.
";

/// The serve process state: the resident engine (if a dataset is loaded) and
/// the session start time.
pub struct ServeState {
    engine: RwLock<Option<Arc<Engine>>>,
    started: Instant,
}

impl Default for ServeState {
    fn default() -> Self {
        ServeState {
            engine: RwLock::new(None),
            started: Instant::now(),
        }
    }
}

impl ServeState {
    /// A state with no dataset loaded.
    pub fn new() -> Self {
        ServeState::default()
    }

    fn current_engine(&self) -> Result<Arc<Engine>, String> {
        // Tolerate poisoning: a panicked worker must not take the whole
        // session down (the slot only ever holds a fully constructed engine).
        self.engine
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
            .ok_or_else(|| "no dataset loaded; send a load request first".to_string())
    }
}

fn millis(d: Duration) -> f64 {
    // Round to 3 decimals so the JSON stays compact and stable to read.
    (d.as_secs_f64() * 1e3 * 1e3).round() / 1e3
}

fn get_str(req: &Json, key: &str) -> Result<Option<String>, String> {
    match req.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| format!("{key:?} must be a string")),
    }
}

fn get_bool(req: &Json, key: &str) -> Result<bool, String> {
    match req.get(key) {
        None | Some(Json::Null) => Ok(false),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| format!("{key:?} must be a boolean")),
    }
}

fn get_usize(req: &Json, key: &str) -> Result<Option<usize>, String> {
    match req.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(|n| Some(n as usize))
            .ok_or_else(|| format!("{key:?} must be a non-negative integer")),
    }
}

fn get_u64(req: &Json, key: &str) -> Result<Option<u64>, String> {
    match req.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("{key:?} must be a non-negative integer")),
    }
}

fn get_f64(req: &Json, key: &str) -> Result<Option<f64>, String> {
    match req.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("{key:?} must be a number")),
    }
}

/// Fields every request may carry regardless of command.
const COMMON_FIELDS: &[&str] = &["id", "cmd", "async"];
/// Mining-configuration fields shared by `mine` and `correct`.
const MINE_FIELDS: &[&str] = &["min_sup", "min_conf", "max_length", "all_patterns"];

/// Rejects misspelled or unknown request fields, mirroring the CLI's
/// `reject_unknown` flag check: a typo'd parameter must error, not silently
/// run with defaults.
fn reject_unknown_fields(req: &Json, allowed: &[&str]) -> Result<(), String> {
    if let Json::Object(fields) = req {
        for (key, _) in fields {
            if !COMMON_FIELDS.contains(&key.as_str()) && !allowed.contains(&key.as_str()) {
                return Err(format!(
                    "unknown field {key:?} (expected one of: {})",
                    allowed.join(", ")
                ));
            }
        }
    }
    Ok(())
}

/// The mining configuration a request describes, with the CLI's defaults
/// (min_sup: 1% of records, at least 2).
fn mining_config(req: &Json, n_records: usize) -> Result<RuleMiningConfig, String> {
    let min_sup = get_usize(req, "min_sup")?.unwrap_or_else(|| (n_records / 100).max(2));
    if min_sup == 0 {
        return Err("\"min_sup\" must be at least 1".to_string());
    }
    let mut config = RuleMiningConfig::new(min_sup)
        .with_min_conf(get_f64(req, "min_conf")?.unwrap_or(0.0))
        .with_closed_only(!get_bool(req, "all_patterns")?);
    if let Some(len) = get_usize(req, "max_length")? {
        config = config.with_max_length(len);
    }
    Ok(config)
}

fn handle_load(state: &ServeState, req: &Json) -> Result<ObjectBuilder, String> {
    reject_unknown_fields(
        req,
        &[
            "path",
            "format",
            "class",
            "separator",
            "tsv",
            "no_header",
            "default_class",
            "strict",
        ],
    )?;
    let Some(path) = get_str(req, "path")? else {
        return Err("\"path\" is required".to_string());
    };
    let input_format = match get_str(req, "format")?.as_deref() {
        None | Some("auto") => None,
        Some(name) => Some(
            InputFormat::parse(name)
                .ok_or_else(|| format!("\"format\" must be rows, basket or auto (got {name:?})"))?,
        ),
    };
    let separator = match (get_str(req, "separator")?, get_bool(req, "tsv")?) {
        (Some(_), true) => return Err("\"separator\" and \"tsv\" are exclusive".to_string()),
        (Some(s), false) => {
            let mut chars = s.chars();
            match (chars.next(), chars.next()) {
                (Some(c), None) => c,
                _ => {
                    return Err(format!(
                        "\"separator\" must be a single character (got {s:?})"
                    ))
                }
            }
        }
        (None, true) => '\t',
        (None, false) => ',',
    };
    let mut load = LoadOptions {
        separator,
        has_header: !get_bool(req, "no_header")?,
        ..LoadOptions::default()
    };
    if let Some(class) = get_str(req, "class")? {
        match class.parse::<usize>() {
            Ok(index) => load.class_column = Some(index),
            Err(_) => load.class_column_name = Some(class),
        }
    }
    let mut basket = BasketOptions::default();
    if let Some(class) = get_str(req, "default_class")? {
        basket.default_class = Some(class);
    }

    let loader = Loader {
        load,
        basket,
        input_format,
    };
    let loaded = loader
        .load_file(&path)
        .map_err(|e| format!("{path}: {e}"))?;
    let warnings: Vec<String> = loaded
        .warnings
        .iter()
        .map(|w| format!("{path}: {w}"))
        .collect();
    if get_bool(req, "strict")? && !warnings.is_empty() {
        return Err(format!(
            "strict: input produced {} loader warning(s): {}",
            warnings.len(),
            warnings.join("; ")
        ));
    }

    let format = loaded.format;
    let engine = loaded.into_engine();
    let mut resp = ObjectBuilder::new();
    resp.string("path", &path)
        .string("format", format.label())
        .number("records", engine.dataset().n_records() as f64)
        .raw(
            "columns",
            engine
                .dataset()
                .n_columns()
                .map(|n| n.to_string())
                .unwrap_or_else(|| "null".to_string()),
        )
        .number("items", engine.dataset().n_items() as f64)
        .number("classes", engine.dataset().n_classes() as f64)
        .number("load_ms", millis(engine.load_time()))
        .strings("warnings", &warnings);
    *state.engine.write().unwrap_or_else(|e| e.into_inner()) = Some(Arc::new(engine));
    Ok(resp)
}

fn handle_mine(state: &ServeState, req: &Json) -> Result<ObjectBuilder, String> {
    reject_unknown_fields(req, MINE_FIELDS)?;
    let engine = state.current_engine()?;
    let config = mining_config(req, engine.dataset().n_records())?;
    let (mined, elapsed, cached) = engine.mine(&config);
    let mut resp = ObjectBuilder::new();
    resp.number("min_sup", config.min_sup as f64)
        .number("rules_mined", mined.rules().len() as f64)
        .number("hypothesis_tests", mined.n_tests() as f64)
        .number("mine_ms", millis(elapsed))
        .boolean("mined_cached", cached);
    Ok(resp)
}

/// Renders the significant rules of a query outcome, most significant first,
/// capped at `top` (0 = all).
fn rules_array(outcome: &QueryOutcome, top: usize) -> String {
    let mut rules: Vec<ClassRule> = outcome
        .result
        .significant_rules()
        .into_iter()
        .cloned()
        .collect();
    sort_by_significance(&mut rules);
    let shown = if top == 0 {
        rules.len()
    } else {
        top.min(rules.len())
    };
    let space = outcome.mined.item_space();
    let rendered: Vec<String> = rules
        .iter()
        .take(shown)
        .map(|rule| {
            let lhs: Vec<String> = rule
                .pattern
                .items()
                .iter()
                .map(|&i| space.describe_item(i))
                .collect();
            let mut obj = ObjectBuilder::new();
            obj.string("rule", &lhs.join(" AND "))
                .string("class", space.class_name(rule.class).unwrap_or("?"))
                .number("coverage", rule.coverage as f64)
                .number("support", rule.support as f64)
                .number("confidence", rule.confidence())
                .raw("p_value", format!("{:e}", rule.p_value));
            obj.finish()
        })
        .collect();
    format!("[{}]", rendered.join(","))
}

fn handle_correct(state: &ServeState, req: &Json) -> Result<ObjectBuilder, String> {
    let mut allowed = MINE_FIELDS.to_vec();
    allowed.extend([
        "correction",
        "metric",
        "alpha",
        "permutations",
        "seed",
        "threads",
        "top",
    ]);
    reject_unknown_fields(req, &allowed)?;
    let engine = state.current_engine()?;
    let mining = mining_config(req, engine.dataset().n_records())?;

    let (approach, metric) = CorrectionApproach::resolve(
        get_str(req, "correction")?.as_deref(),
        get_str(req, "metric")?.as_deref(),
    )?;

    let mut query = Query::new(mining)
        .with_correction(approach, metric)
        .with_alpha(get_f64(req, "alpha")?.unwrap_or(0.05))
        .with_permutations(get_usize(req, "permutations")?.unwrap_or(1000))
        .with_seed(get_u64(req, "seed")?.unwrap_or(17));
    if let Some(threads) = get_usize(req, "threads")? {
        query = query.with_threads(threads);
    }
    let top = get_usize(req, "top")?.unwrap_or(20);

    let outcome = engine.query(&query).map_err(|e| e.to_string())?;
    let mut resp = ObjectBuilder::new();
    resp.string("method", &outcome.result.method)
        .string("metric", outcome.result.metric.label())
        .number("alpha", outcome.result.alpha)
        .number("min_sup", query.mining.min_sup as f64)
        .number("rules_mined", outcome.mined.rules().len() as f64)
        .number("hypothesis_tests", outcome.result.n_tests as f64)
        .number("significant", outcome.result.n_significant() as f64);
    match outcome.result.p_value_cutoff {
        Some(cutoff) => resp.raw("p_value_cutoff", format!("{cutoff:e}")),
        None => resp.raw("p_value_cutoff", "null"),
    };
    if approach == CorrectionApproach::Permutation {
        resp.number("permutations", query.n_permutations as f64)
            .number("seed", query.seed as f64);
    }
    resp.number("mine_ms", millis(outcome.timings.mine))
        .number("null_ms", millis(outcome.timings.null))
        .number("correct_ms", millis(outcome.timings.correct))
        .boolean("mined_cached", outcome.mined_cached);
    match outcome.null_cached {
        Some(cached) => resp.boolean("null_cached", cached),
        None => resp.raw("null_cached", "null"),
    };
    resp.raw("rules", rules_array(&outcome, top));
    Ok(resp)
}

fn handle_stats(state: &ServeState, req: &Json) -> Result<ObjectBuilder, String> {
    reject_unknown_fields(req, &[])?;
    let mut resp = ObjectBuilder::new();
    resp.number("uptime_ms", millis(state.started.elapsed()));
    match state
        .engine
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
    {
        None => {
            resp.boolean("loaded", false);
        }
        Some(engine) => {
            let stats = engine.stats();
            resp.boolean("loaded", true)
                .number("records", engine.dataset().n_records() as f64)
                .number("items", engine.dataset().n_items() as f64)
                .number("classes", engine.dataset().n_classes() as f64)
                .number("queries", stats.queries as f64)
                .number("mine_hits", stats.mine_hits as f64)
                .number("mine_misses", stats.mine_misses as f64)
                .number("null_hits", stats.null_hits as f64)
                .number("null_misses", stats.null_misses as f64)
                .number("cached_rule_sets", stats.cached_rule_sets as f64)
                .number("cached_nulls", stats.cached_nulls as f64)
                .number("table_bytes", stats.table_bytes as f64);
        }
    }
    Ok(resp)
}

/// Handles one request line; returns the response line (no trailing newline)
/// and whether the session should shut down.
pub fn handle_line(state: &ServeState, line: &str) -> (String, bool) {
    handle_parsed(state, Json::parse(line))
}

/// [`handle_line`] for an already-parsed request (the serve loop parses each
/// line exactly once, for routing, and hands the result here).
fn handle_parsed(state: &ServeState, parsed: Result<Json, JsonError>) -> (String, bool) {
    let req = match parsed {
        Ok(req @ Json::Object(_)) => req,
        Ok(_) => {
            let mut resp = ObjectBuilder::new();
            resp.boolean("ok", false)
                .string("error", "request must be a JSON object");
            return (resp.finish(), false);
        }
        Err(e) => {
            let mut resp = ObjectBuilder::new();
            resp.boolean("ok", false).string("error", &e.to_string());
            return (resp.finish(), false);
        }
    };

    let mut resp = ObjectBuilder::new();
    if let Some(id) = req.get("id") {
        resp.json("id", id);
    }
    let cmd = match req.get("cmd").and_then(Json::as_str) {
        Some(cmd) => cmd.to_string(),
        None => {
            resp.boolean("ok", false)
                .string("error", "missing \"cmd\" field");
            return (resp.finish(), false);
        }
    };
    resp.string("cmd", &cmd);

    if cmd == "shutdown" {
        resp.boolean("ok", true);
        return (resp.finish(), true);
    }
    let handled = match cmd.as_str() {
        "load" => handle_load(state, &req),
        "mine" => handle_mine(state, &req),
        "correct" => handle_correct(state, &req),
        "stats" => handle_stats(state, &req),
        other => Err(format!(
            "unknown cmd {other:?} (expected load, mine, correct, stats or shutdown)"
        )),
    };
    match handled {
        Ok(fields) => {
            resp.boolean("ok", true).raw_fields(fields);
        }
        Err(message) => {
            resp.boolean("ok", false).string("error", &message);
        }
    }
    (resp.finish(), false)
}

/// True when a request opted into concurrent handling: a `mine`, `correct`
/// or `stats` request carrying `"async":true` runs on a worker thread over
/// the shared engine, without blocking the reader.  Everything else —
/// including `load` (which swaps the resident engine) and `shutdown` — is
/// handled in request order, after every in-flight worker has finished, so
/// the default flow has deterministic cache semantics (a repeat of the
/// previous request is always warm).
fn runs_async(parsed: &Result<Json, JsonError>) -> bool {
    match parsed {
        Ok(req) => {
            matches!(
                req.get("cmd").and_then(Json::as_str),
                Some("mine") | Some("correct") | Some("stats")
            ) && req.get("async").and_then(Json::as_bool) == Some(true)
        }
        Err(_) => false,
    }
}

/// Upper bound on concurrently running `"async":true` workers; the reader
/// joins the oldest worker before spawning past it.
const MAX_ASYNC_WORKERS: usize = 16;

/// Runs the serve loop over arbitrary streams (the binary passes
/// stdin/stdout; tests pass in-memory buffers).  Returns the process exit
/// code.  Queries run concurrently on worker threads over the shared engine
/// (at most [`MAX_ASYNC_WORKERS`] at once); responses are written
/// line-atomically and matched to requests by `"id"`.
pub fn serve_streams<R, W>(reader: R, writer: W) -> i32
where
    R: BufRead,
    W: Write + Send + 'static,
{
    let state = Arc::new(ServeState::new());
    let out = Arc::new(Mutex::new(writer));
    let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();

    let write_line = |out: &Arc<Mutex<W>>, line: &str| {
        let mut out = out.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    };

    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let parsed = Json::parse(&line);
        if !runs_async(&parsed) {
            for worker in workers.drain(..) {
                let _ = worker.join();
            }
            let (resp, shutdown) = handle_parsed(&state, parsed);
            write_line(&out, &resp);
            if shutdown {
                return 0;
            }
        } else {
            // Bound the in-flight workers: a long async sweep must not spawn
            // one OS thread per request line.  Joining the oldest worker
            // first keeps at most MAX_ASYNC_WORKERS alive.
            if workers.len() >= MAX_ASYNC_WORKERS {
                let _ = workers.remove(0).join();
            }
            let state = state.clone();
            let out = out.clone();
            workers.push(std::thread::spawn(move || {
                // One response per request, even if the handler panics: a
                // client matching responses by id must never hang on a
                // silently dead worker.
                let id = parsed.as_ref().ok().and_then(|r| r.get("id").cloned());
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handle_parsed(&state, parsed)
                }));
                let resp = match outcome {
                    Ok((resp, _)) => resp,
                    Err(_) => {
                        let mut resp = ObjectBuilder::new();
                        if let Some(id) = &id {
                            resp.json("id", id);
                        }
                        resp.boolean("ok", false)
                            .string("error", "internal error: request handler panicked");
                        resp.finish()
                    }
                };
                let mut guard = out.lock().unwrap_or_else(|e| e.into_inner());
                let _ = writeln!(guard, "{resp}");
                let _ = guard.flush();
            }));
        }
    }
    for worker in workers.drain(..) {
        let _ = worker.join();
    }
    0
}

/// Entry point of `sigrule serve ARGS`: parses the (tiny) flag surface and
/// runs the loop on stdin/stdout.
pub fn run_serve(argv: &[String]) -> i32 {
    match argv.first().map(String::as_str) {
        Some("--help" | "-h" | "help") => {
            print!("{SERVE_USAGE}");
            0
        }
        Some(other) => {
            eprintln!(
                "sigrule: error: serve takes no option {other:?} \
                 (configuration happens in the JSON protocol)\n\n{SERVE_USAGE}"
            );
            2
        }
        None => serve_streams(std::io::stdin().lock(), std::io::stdout()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigrule::{ErrorMetric, Pipeline};
    use sigrule_data::loader::dataset_to_baskets;
    use sigrule_synth::{BasketGenerator, BasketParams};

    fn fixture_path() -> String {
        // Prefer the checked-in fixture; fall back to a generated file so the
        // unit test does not depend on the repository layout.
        let checked_in = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../tests/fixtures/retail_toy.basket");
        if checked_in.exists() {
            return checked_in.to_string_lossy().into_owned();
        }
        let params = BasketParams::default()
            .with_transactions(200)
            .with_items(25)
            .with_rules(1)
            .with_coverage(50, 50)
            .with_confidence(0.9, 0.9);
        let (dataset, _) = BasketGenerator::new(params).unwrap().generate(42);
        let path =
            std::env::temp_dir().join(format!("sigrule_serve_unit_{}.basket", std::process::id()));
        std::fs::write(&path, dataset_to_baskets(&dataset)).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn ok(resp: &str) -> Json {
        let parsed = Json::parse(resp).expect("responses are valid JSON");
        assert_eq!(
            parsed.get("ok").and_then(Json::as_bool),
            Some(true),
            "expected ok response, got {resp}"
        );
        parsed
    }

    #[test]
    fn session_loads_mines_and_corrects_with_cache_reuse() {
        let state = ServeState::new();
        let path = fixture_path();

        let (resp, _) = handle_line(&state, &format!(r#"{{"cmd":"load","path":"{path}"}}"#));
        let load = ok(&resp);
        let n_records = load.get("records").and_then(Json::as_u64).unwrap();
        assert!(n_records > 0);

        let correct = r#"{"cmd":"correct","min_sup":10,"correction":"permutation","permutations":50,"seed":7,"id":1}"#;
        let (resp, _) = handle_line(&state, correct);
        let cold = ok(&resp);
        assert_eq!(cold.get("id").and_then(Json::as_u64), Some(1));
        assert_eq!(
            cold.get("mined_cached").and_then(Json::as_bool),
            Some(false)
        );
        assert_eq!(cold.get("null_cached").and_then(Json::as_bool), Some(false));

        let (resp, _) = handle_line(&state, correct);
        let warm = ok(&resp);
        assert_eq!(warm.get("mined_cached").and_then(Json::as_bool), Some(true));
        assert_eq!(warm.get("null_cached").and_then(Json::as_bool), Some(true));
        assert_eq!(warm.get("mine_ms").and_then(Json::as_f64), Some(0.0));
        assert_eq!(warm.get("null_ms").and_then(Json::as_f64), Some(0.0));
        // Identical parameters → identical decisions and rule lists.
        assert_eq!(warm.get("significant"), cold.get("significant"));
        assert_eq!(warm.get("p_value_cutoff"), cold.get("p_value_cutoff"));
        assert_eq!(warm.get("rules"), cold.get("rules"));

        // The warm answers match a one-shot pipeline bit for bit.
        let one_shot = Pipeline::new(10)
            .with_correction(CorrectionApproach::Permutation, ErrorMetric::Fwer)
            .with_permutations(50)
            .with_seed(7)
            .run_file(&path)
            .unwrap();
        assert_eq!(
            warm.get("significant").and_then(Json::as_u64),
            Some(one_shot.result.n_significant() as u64)
        );

        let (resp, _) = handle_line(&state, r#"{"cmd":"stats"}"#);
        let stats = ok(&resp);
        assert_eq!(stats.get("loaded").and_then(Json::as_bool), Some(true));
        assert_eq!(stats.get("queries").and_then(Json::as_u64), Some(2));
        assert_eq!(stats.get("null_hits").and_then(Json::as_u64), Some(1));

        let (resp, shutdown) = handle_line(&state, r#"{"cmd":"shutdown"}"#);
        assert!(shutdown);
        ok(&resp);
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let state = ServeState::new();
        let (resp, shutdown) = handle_line(&state, "not json");
        assert!(!shutdown);
        let parsed = Json::parse(&resp).unwrap();
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(false));

        let (resp, _) = handle_line(&state, r#"{"cmd":"mine"}"#);
        let parsed = Json::parse(&resp).unwrap();
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(false));
        assert!(parsed
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("no dataset loaded"));

        let (resp, _) = handle_line(&state, r#"{"cmd":"transmogrify"}"#);
        let parsed = Json::parse(&resp).unwrap();
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(false));

        // A misspelled field errors instead of silently running with
        // defaults (parity with the CLI's unknown-flag rejection).
        let (resp, _) = handle_line(&state, r#"{"cmd":"correct","min_supp":5}"#);
        let parsed = Json::parse(&resp).unwrap();
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(false));
        assert!(parsed
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("min_supp"));

        let (resp, _) = handle_line(&state, r#"{"cmd":"load"}"#);
        let parsed = Json::parse(&resp).unwrap();
        assert!(parsed
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("path"));

        // An unknown correction name surfaces the FromStr error listing the
        // valid values.
        let path = fixture_path();
        let (_, _) = handle_line(&state, &format!(r#"{{"cmd":"load","path":"{path}"}}"#));
        let (resp, _) = handle_line(&state, r#"{"cmd":"correct","correction":"nope"}"#);
        let parsed = Json::parse(&resp).unwrap();
        let message = parsed.get("error").and_then(Json::as_str).unwrap();
        assert!(message.contains("permutation"), "got {message}");
        assert!(message.contains("holdout"), "got {message}");

        // min_sup 0 is rejected consistently by mine and correct.
        for cmd in ["mine", "correct"] {
            let (resp, _) = handle_line(&state, &format!(r#"{{"cmd":"{cmd}","min_sup":0}}"#));
            let parsed = Json::parse(&resp).unwrap();
            assert_eq!(
                parsed.get("ok").and_then(Json::as_bool),
                Some(false),
                "{cmd}"
            );
            assert!(parsed
                .get("error")
                .and_then(Json::as_str)
                .unwrap()
                .contains("min_sup"));
        }
    }

    #[test]
    fn serve_streams_round_trips_a_scripted_session() {
        let path = fixture_path();
        let script = format!(
            concat!(
                r#"{{"id":"a","cmd":"load","path":"{path}"}}"#,
                "\n",
                r#"{{"id":"b","cmd":"correct","min_sup":10,"correction":"bonferroni"}}"#,
                "\n",
                r#"{{"id":"c","cmd":"stats"}}"#,
                "\n",
                r#"{{"id":"d","cmd":"shutdown"}}"#,
                "\n"
            ),
            path = path
        );
        let out: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        // A Write proxy so the test can keep a handle on the buffer.
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let code = serve_streams(script.as_bytes(), SharedBuf(out.clone()));
        assert_eq!(code, 0);
        let text = String::from_utf8(out.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "one response per request: {text}");
        for line in &lines {
            ok(line);
        }
        // Responses can be matched back by id.
        let ids: Vec<String> = lines
            .iter()
            .map(|l| {
                Json::parse(l)
                    .unwrap()
                    .get("id")
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string()
            })
            .collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(sorted, vec!["a", "b", "c", "d"]);
    }
}
