//! The `mine`, `correct` and `bench` subcommands.

use crate::args::{parse_correction, ArgMap, CommonOpts, UsageError};
use crate::output::{method_summary_row, significant_rules_table, Report};
use sigrule::cancel::CancelToken;
use sigrule::engine::{Engine, Loader};
use sigrule::pipeline::{CorrectionApproach, Pipeline, PipelineError};
use sigrule::ErrorMetric;
use sigrule_data::{Dataset, InputFormat, SharedDataset};
use sigrule_eval::report::Table;
use sigrule_server::coordinate::{self, DistributedNull, ShardSpec};
use sigrule_server::json::ObjectBuilder;
use sigrule_synth::{SyntheticGenerator, SyntheticParams};
use std::time::Instant;

/// A failed command: either a bad invocation (exit 2) or a runtime error
/// (exit 1).
#[derive(Debug)]
pub enum CliError {
    /// Malformed command line.
    Usage(UsageError),
    /// The command itself failed (missing file, malformed data, ...).
    Runtime(String),
}

impl From<UsageError> for CliError {
    fn from(e: UsageError) -> Self {
        CliError::Usage(e)
    }
}

impl From<PipelineError> for CliError {
    fn from(e: PipelineError) -> Self {
        CliError::Runtime(e.to_string())
    }
}

impl From<sigrule_data::DataError> for CliError {
    fn from(e: sigrule_data::DataError) -> Self {
        CliError::Runtime(e.to_string())
    }
}

fn millis(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Builds the pipeline a [`CommonOpts`] set describes for `n_records`
/// records.
fn pipeline_for(
    opts: &CommonOpts,
    n_records: usize,
    approach: CorrectionApproach,
    metric: ErrorMetric,
) -> Pipeline {
    let mut pipeline = Pipeline::new(opts.effective_min_sup(n_records))
        .with_load(opts.load_options())
        .with_mining(opts.mining_config(n_records))
        .with_correction(approach, metric)
        .with_alpha(opts.alpha)
        .with_permutations(opts.permutations)
        .with_seed(opts.seed);
    if let Some(n) = opts.threads {
        pipeline = pipeline.with_threads(n);
    }
    pipeline
}

/// Fails the command when `--strict` was given and the loader produced
/// warnings: strict mode turns blank lines, empty transactions and other
/// dedupe noise into a nonzero exit instead of stderr-only messages.
fn enforce_strict(opts: &CommonOpts, warnings: &[String]) -> Result<(), CliError> {
    if opts.strict && !warnings.is_empty() {
        return Err(CliError::Runtime(format!(
            "--strict: input produced {} loader warning(s):\n  {}",
            warnings.len(),
            warnings.join("\n  ")
        )));
    }
    Ok(())
}

/// Loads the dataset named by `--input` (required here) through the shared
/// load stage ([`Loader`]), in the requested or auto-detected input format.
/// Returns the dataset, any loader warnings (rendered on stderr by the
/// caller), the effective format and the load time.
fn load_input(opts: &CommonOpts) -> Result<(Dataset, Vec<String>, InputFormat, f64), CliError> {
    let Some(path) = &opts.input else {
        return Err(CliError::Usage(UsageError(
            "--input <file> is required".into(),
        )));
    };
    let loader = Loader {
        load: opts.load_options(),
        basket: opts.basket_options(),
        input_format: opts.input_format,
    };
    let loaded = loader
        .load_file(path)
        .map_err(|e| CliError::Runtime(format!("{}: {e}", path.display())))?;
    let warnings: Vec<String> = loaded
        .warnings
        .iter()
        .map(|w| format!("{}: {w}", path.display()))
        .collect();
    enforce_strict(opts, &warnings)?;
    Ok((
        loaded.dataset,
        warnings,
        loaded.format,
        millis(loaded.elapsed),
    ))
}

fn dataset_summary(report: &mut Report, opts: &CommonOpts, dataset: &Dataset, format: InputFormat) {
    if let Some(path) = &opts.input {
        report.add("input", path.display());
        report.add("input_format", format.label());
    }
    report.add("records", dataset.n_records());
    report.add(
        "columns",
        dataset
            .n_columns()
            .map(|n| n.to_string())
            .unwrap_or_else(|| "- (basket data)".to_string()),
    );
    report.add("items", dataset.n_items());
    report.add(
        "classes",
        format!(
            "{} ({})",
            dataset.n_classes(),
            dataset.item_space().classes().join(", ")
        ),
    );
    report.add("min_sup", opts.effective_min_sup(dataset.n_records()));
}

/// `sigrule mine`: load → mine → one correction → significant rules.
pub fn mine(args: &ArgMap) -> Result<Report, CliError> {
    let mut known = CommonOpts::VALUE_FLAGS.to_vec();
    known.extend(["correction", "metric"]);
    args.reject_unknown(&known)?;
    let opts = CommonOpts::from_args(args)?;
    let (approach, metric) = parse_correction(args)?;

    let (dataset, warnings, format, load_ms) = load_input(&opts)?;
    let pipeline = pipeline_for(&opts, dataset.n_records(), approach, metric);
    // Share the loaded dataset with the engine instead of copying it (on
    // large inputs run_dataset's seeding clone would double peak memory).
    let shared = SharedDataset::new(dataset);
    let run = pipeline.run_shared(&shared)?;

    let mut report = Report::new("mine");
    report.warnings = warnings;
    dataset_summary(&mut report, &opts, shared.dataset(), format);
    report.add("rules_mined", run.mined.rules().len());
    report.add("hypothesis_tests", run.mined.n_tests());
    report.add("correction", run.result.method.clone());
    report.add("metric", run.result.metric.label());
    report.add("alpha", opts.alpha);
    if approach == CorrectionApproach::Permutation {
        report.add("permutations", opts.permutations);
        report.add("seed", opts.seed);
    }
    if let Some(cutoff) = run.result.p_value_cutoff {
        report.add("p_value_cutoff", format!("{cutoff:.6e}"));
    }
    report.add("significant", run.result.n_significant());
    report.add("load_ms", format!("{load_ms:.1}"));
    report.add("mine_ms", format!("{:.1}", millis(run.timings.mine)));
    report.add("correct_ms", format!("{:.1}", millis(run.timings.correct)));
    report.tables.push(significant_rules_table(&run, opts.top));
    Ok(report)
}

/// The method roster `sigrule correct` and `sigrule bench` iterate:
/// every approach × metric combination of the paper that runs on a single
/// whole dataset.
fn method_roster() -> Vec<(CorrectionApproach, ErrorMetric)> {
    vec![
        (CorrectionApproach::None, ErrorMetric::Fwer),
        (CorrectionApproach::Direct, ErrorMetric::Fwer),
        (CorrectionApproach::Direct, ErrorMetric::Fdr),
        (CorrectionApproach::Permutation, ErrorMetric::Fwer),
        (CorrectionApproach::Permutation, ErrorMetric::Fdr),
        (CorrectionApproach::Holdout, ErrorMetric::Fwer),
        (CorrectionApproach::Holdout, ErrorMetric::Fdr),
    ]
}

/// The `load` request line `--workers` sharding replays on each worker so
/// the dataset resolves there under the same name with the same loader
/// options.  Workers must see the same file path — a shared filesystem or
/// an identical layout.
fn worker_load_line(opts: &CommonOpts, name: &str) -> Option<String> {
    let path = opts.input.as_ref()?;
    let mut line = ObjectBuilder::new();
    line.string("cmd", "load")
        .string("path", &path.display().to_string())
        .string("name", name);
    if let Some(format) = opts.input_format {
        line.string("format", format.label());
    }
    if let Some(class) = &opts.class {
        line.string("class", class);
    }
    if opts.separator != ',' {
        line.string("separator", &opts.separator.to_string());
    }
    if opts.no_header {
        line.boolean("no_header", true);
    }
    if let Some(class) = &opts.default_class {
        line.string("default_class", class);
    }
    Some(line.finish())
}

/// Scatters the cold permutation null across the `--workers` fleet (plus
/// the local executor) before the method roster runs, so the permutation
/// rows hit a warm cache whose statistics are bit-identical to a local
/// collection.  Unreachable or dying workers degrade to warnings — the
/// local executor covers for them — and the returned warnings go to
/// stderr, never into the report body, so machine output stays identical
/// to an undistributed run.
fn distribute_null(
    engine: &Engine,
    opts: &CommonOpts,
    workers_spec: &str,
) -> Result<Vec<String>, CliError> {
    let workers = coordinate::parse_worker_list(workers_spec)
        .map_err(|e| CliError::Usage(UsageError(format!("--workers: {e}"))))?;
    if workers.is_empty() || opts.permutations == 0 {
        return Ok(Vec::new());
    }
    let n_records = engine.dataset().n_records();
    let name = match &opts.input {
        Some(path) => format!("cli:{}", path.display()),
        None => "cli:synthetic".to_string(),
    };
    let mut spec = ShardSpec::new(
        &name,
        &opts.mining_config(n_records),
        opts.permutations,
        opts.seed,
    );
    spec.threads = opts.threads;
    let plan = DistributedNull {
        workers,
        load_line: worker_load_line(opts, &name),
        spec,
    };
    let fill = coordinate::fill_engine_null(engine, &plan, &CancelToken::none())
        .map_err(|c| CliError::Runtime(c.to_string()))?;
    Ok(fill.warnings)
}

/// `sigrule correct`: load → mine once → every correction approach →
/// comparison table (the CLI's version of the paper's Table 3 axes).
/// With `--workers`, the cold permutation null is scattered across remote
/// `sigrule serve` processes first — same statistics, shared wall-clock.
pub fn correct(args: &ArgMap) -> Result<Report, CliError> {
    let mut known = CommonOpts::VALUE_FLAGS.to_vec();
    known.push("workers");
    args.reject_unknown(&known)?;
    let opts = CommonOpts::from_args(args)?;

    let (dataset, mut warnings, format, load_ms) = load_input(&opts)?;
    let n_records = dataset.n_records();
    // One resident engine for the whole roster: the rule set is mined once
    // and the permutation null is collected once, shared by the FWER and FDR
    // permutation rows (the engine's null cache keys on (mining, N, seed),
    // not on the metric).
    let engine = Engine::new(dataset);
    let (mined, mine_time, _) = engine.mine(&opts.mining_config(n_records));
    let mine_ms = millis(mine_time);
    if let Some(workers_spec) = args.get("workers") {
        warnings.extend(distribute_null(&engine, &opts, workers_spec)?);
    }

    let mut table = Table::new(
        format!("correction comparison at alpha = {}", opts.alpha),
        vec![
            "method",
            "metric",
            "alpha",
            "n_tests",
            "significant",
            "p_value_cutoff",
            "time_ms",
        ],
    );
    for (approach, metric) in method_roster() {
        let query = pipeline_for(&opts, n_records, approach, metric).query();
        let outcome = engine.query(&query)?;
        table.push_row(method_summary_row(
            &outcome.result,
            millis(outcome.timings.null + outcome.timings.correct),
        ));
    }

    let mut report = Report::new("correct");
    report.warnings = warnings;
    dataset_summary(&mut report, &opts, engine.dataset(), format);
    report.add("rules_mined", mined.rules().len());
    report.add("hypothesis_tests", mined.n_tests());
    report.add("permutations", opts.permutations);
    report.add("seed", opts.seed);
    report.add("load_ms", format!("{load_ms:.1}"));
    report.add("mine_ms", format!("{mine_ms:.1}"));
    report.tables.push(table);
    Ok(report)
}

/// `sigrule bench`: time every pipeline stage on a real file (`--input`) or
/// on a synthetic dataset (`--records` / `--attributes` / `--rules`).
pub fn bench(args: &ArgMap) -> Result<Report, CliError> {
    let mut known = CommonOpts::VALUE_FLAGS.to_vec();
    known.extend(["records", "attributes", "rules"]);
    args.reject_unknown(&known)?;
    let opts = CommonOpts::from_args(args)?;

    let mut report = Report::new("bench");
    let mut format = InputFormat::Rows;
    let (dataset, source, load_ms) = if opts.input.is_some() {
        let (dataset, warnings, input_format, load_ms) = load_input(&opts)?;
        report.warnings = warnings;
        format = input_format;
        (dataset, "file", load_ms)
    } else {
        let records: usize = args.get_parsed("records")?.unwrap_or(2000);
        let attributes: usize = args.get_parsed("attributes")?.unwrap_or(20);
        let rules: usize = args.get_parsed("rules")?.unwrap_or(2);
        // Scale embedded-rule coverage with the dataset so any --records
        // value yields valid generator parameters.
        let params = SyntheticParams::default()
            .with_records(records)
            .with_attributes(attributes)
            .with_rules(rules)
            .with_coverage((records / 10).max(1), (records / 8).max(1))
            .with_confidence(0.8, 0.9);
        let start = Instant::now();
        let (dataset, _) = SyntheticGenerator::new(params)
            .map_err(CliError::Runtime)?
            .generate(opts.seed);
        (dataset, "synthetic", millis(start.elapsed()))
    };
    report.add("source", source);
    let n_records = dataset.n_records();
    let engine = Engine::new(dataset);
    dataset_summary(&mut report, &opts, engine.dataset(), format);
    report.add("permutations", opts.permutations);
    report.add("seed", opts.seed);

    let mut table = Table::new(
        "pipeline stage timings",
        vec!["stage", "detail", "time_ms", "result"],
    );
    table.push_row(vec![
        "load".into(),
        source.into(),
        format!("{load_ms:.1}"),
        format!("{n_records} records"),
    ]);

    let mining = opts.mining_config(n_records);
    let (mined, mine_time, _) = engine.mine(&mining);
    table.push_row(vec![
        "mine".into(),
        format!("min_sup {}", mining.min_sup),
        format!("{:.1}", millis(mine_time)),
        format!("{} rules, {} tests", mined.rules().len(), mined.n_tests()),
    ]);

    for (approach, metric) in method_roster() {
        if approach == CorrectionApproach::None {
            continue;
        }
        let query = pipeline_for(&opts, n_records, approach, metric).query();
        let outcome = engine.query(&query)?;
        table.push_row(vec![
            "correct".into(),
            format!("{} ({})", outcome.result.method, metric.label()),
            format!(
                "{:.1}",
                millis(outcome.timings.null + outcome.timings.correct)
            ),
            format!("{} significant", outcome.result.n_significant()),
        ]);
    }
    report.tables.push(table);
    Ok(report)
}
