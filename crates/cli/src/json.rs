//! The serve protocol's JSON parser and object builder.
//!
//! The implementation moved to [`sigrule_server::json`] when the serve core
//! became the server subsystem; this module re-exports it so CLI-side code
//! and tests keep their `sigrule_cli::json::Json` imports.

pub use sigrule_server::json::{Json, JsonError, ObjectBuilder};
