//! A small dependency-free `--flag value` / `--flag=value` argument parser
//! and the option set shared by every subcommand.

use sigrule::pipeline::CorrectionApproach;
use sigrule::{ErrorMetric, RuleMiningConfig};
use sigrule_data::loader::{BasketOptions, LoadOptions};
use sigrule_data::InputFormat;
use std::path::PathBuf;

/// A malformed invocation (unknown flag, missing value, unparsable number).
/// Reported on stderr together with the usage text; exit code 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError(pub String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Parsed command line: flag → value pairs plus boolean switches.
#[derive(Debug, Default)]
pub struct ArgMap {
    values: Vec<(String, String)>,
    switches: Vec<String>,
}

impl ArgMap {
    /// Parses `argv` (without the program and subcommand names).  Flags named
    /// in `switch_names` take no value; every other flag takes exactly one
    /// (either `--flag value` or `--flag=value`).  Positional arguments are
    /// rejected.
    pub fn parse(argv: &[String], switch_names: &[&str]) -> Result<ArgMap, UsageError> {
        let mut map = ArgMap::default();
        let mut it = argv.iter();
        while let Some(arg) = it.next() {
            let Some(stripped) = arg.strip_prefix("--") else {
                return Err(UsageError(format!(
                    "unexpected positional argument {arg:?}"
                )));
            };
            let (name, inline_value) = match stripped.split_once('=') {
                Some((n, v)) => (n.to_string(), Some(v.to_string())),
                None => (stripped.to_string(), None),
            };
            if switch_names.contains(&name.as_str()) {
                if let Some(v) = inline_value {
                    return Err(UsageError(format!(
                        "--{name} is a switch and takes no value (got {v:?})"
                    )));
                }
                map.switches.push(name);
            } else {
                let value = match inline_value {
                    Some(v) => v,
                    None => it
                        .next()
                        .cloned()
                        .ok_or_else(|| UsageError(format!("--{name} needs a value")))?,
                };
                map.values.push((name, value));
            }
        }
        Ok(map)
    }

    /// The raw string value of a flag, if given.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// True when the switch was given.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Typed flag lookup.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, UsageError> {
        match self.get(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse::<T>()
                .map(Some)
                .map_err(|_| UsageError(format!("--{name}: cannot parse {raw:?}"))),
        }
    }

    /// Errors on any flag not in `known` (switches are checked by the caller
    /// during parsing).
    pub fn reject_unknown(&self, known: &[&str]) -> Result<(), UsageError> {
        for (name, _) in &self.values {
            if !known.contains(&name.as_str()) {
                return Err(UsageError(format!("unknown option --{name}")));
            }
        }
        Ok(())
    }
}

/// Output format of every subcommand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// Aligned plain-text tables (default).
    #[default]
    Human,
    /// One JSON document on stdout.
    Json,
    /// CSV, one table after another.
    Csv,
}

impl Format {
    pub(crate) fn parse(name: &str) -> Result<Format, UsageError> {
        match name.to_ascii_lowercase().as_str() {
            "human" | "text" => Ok(Format::Human),
            "json" => Ok(Format::Json),
            "csv" => Ok(Format::Csv),
            other => Err(UsageError(format!(
                "--format must be human, json or csv (got {other:?})"
            ))),
        }
    }
}

/// The option surface shared by `mine`, `correct` and `bench`.
#[derive(Debug, Clone)]
pub struct CommonOpts {
    /// Input file (`None` only for `bench`, which then generates synthetic
    /// data).
    pub input: Option<PathBuf>,
    /// Input format (`--input-format rows|basket`); `None` auto-detects from
    /// the file extension and content.
    pub input_format: Option<InputFormat>,
    /// Class assigned to basket transactions without a `label:` token.
    pub default_class: Option<String>,
    /// Class column: a header name or a 0-based index.
    pub class: Option<String>,
    /// Column separator (`--separator` / `--tsv`).
    pub separator: char,
    /// First row is data, not a header.
    pub no_header: bool,
    /// Minimum support; `None` means 1% of the records (at least 2).
    pub min_sup: Option<usize>,
    /// Minimum confidence filter (default 0, as in the paper).
    pub min_conf: f64,
    /// Maximum rule length.
    pub max_length: Option<usize>,
    /// Test all frequent patterns instead of closed ones only.
    pub all_patterns: bool,
    /// Significance level α.
    pub alpha: f64,
    /// Seed for the permutation shuffler / holdout partitioner.
    pub seed: u64,
    /// Permutation count for the permutation approach.
    pub permutations: usize,
    /// Worker threads for the permutation engine.
    pub threads: Option<usize>,
    /// Output format.
    pub format: Format,
    /// Rules shown in reports (0 = all).
    pub top: usize,
    /// Treat loader warnings as fatal (`--strict`): any
    /// [`LoadWarning`](sigrule_data::loader::LoadWarning) aborts the command
    /// with a nonzero exit instead of stderr-only noise.
    pub strict: bool,
}

impl CommonOpts {
    /// Flag names consumed here (subcommands append their own).
    pub const VALUE_FLAGS: &'static [&'static str] = &[
        "input",
        "input-format",
        "default-class",
        "class",
        "separator",
        "min-sup",
        "min-conf",
        "max-length",
        "alpha",
        "seed",
        "permutations",
        "threads",
        "format",
        "top",
    ];
    /// Switch names consumed here.
    pub const SWITCHES: &'static [&'static str] =
        &["tsv", "no-header", "all-patterns", "strict", "help"];

    /// Extracts the common options from a parsed argument map.
    pub fn from_args(args: &ArgMap) -> Result<CommonOpts, UsageError> {
        let separator = match (args.get("separator"), args.has("tsv")) {
            (Some(_), true) => {
                return Err(UsageError("--separator and --tsv are exclusive".into()))
            }
            (Some(s), false) => {
                let mut chars = s.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => c,
                    _ => {
                        return Err(UsageError(format!(
                            "--separator must be a single character (got {s:?})"
                        )))
                    }
                }
            }
            (None, true) => '\t',
            (None, false) => ',',
        };
        let input_format = match args.get("input-format") {
            None | Some("auto") => None,
            Some(name) => Some(InputFormat::parse(name).ok_or_else(|| {
                UsageError(format!(
                    "--input-format must be rows, basket or auto (got {name:?})"
                ))
            })?),
        };
        let opts = CommonOpts {
            input: args.get("input").map(PathBuf::from),
            input_format,
            default_class: args.get("default-class").map(String::from),
            class: args.get("class").map(String::from),
            separator,
            no_header: args.has("no-header"),
            min_sup: args.get_parsed("min-sup")?,
            min_conf: args.get_parsed("min-conf")?.unwrap_or(0.0),
            max_length: args.get_parsed("max-length")?,
            all_patterns: args.has("all-patterns"),
            alpha: args.get_parsed("alpha")?.unwrap_or(0.05),
            seed: args.get_parsed("seed")?.unwrap_or(17),
            permutations: args.get_parsed("permutations")?.unwrap_or(1000),
            threads: args.get_parsed("threads")?,
            format: match args.get("format") {
                Some(f) => Format::parse(f)?,
                None => Format::Human,
            },
            top: args.get_parsed("top")?.unwrap_or(20),
            strict: args.has("strict"),
        };
        Ok(opts)
    }

    /// The loader options these flags describe.
    pub fn load_options(&self) -> LoadOptions {
        let mut load = LoadOptions {
            separator: self.separator,
            has_header: !self.no_header,
            ..LoadOptions::default()
        };
        if let Some(class) = &self.class {
            // A bare integer selects by index; anything else by header name.
            match class.parse::<usize>() {
                Ok(index) => load.class_column = Some(index),
                Err(_) => load.class_column_name = Some(class.clone()),
            }
        }
        load
    }

    /// The basket-reader options these flags describe.
    pub fn basket_options(&self) -> BasketOptions {
        let mut basket = BasketOptions::default();
        if let Some(class) = &self.default_class {
            basket.default_class = Some(class.clone());
        }
        basket
    }

    /// The effective minimum support for a dataset of `n_records` records:
    /// the explicit flag, or 1% of the records (at least 2).
    pub fn effective_min_sup(&self, n_records: usize) -> usize {
        self.min_sup.unwrap_or_else(|| (n_records / 100).max(2))
    }

    /// The mining configuration these flags describe.
    pub fn mining_config(&self, n_records: usize) -> RuleMiningConfig {
        let mut config = RuleMiningConfig::new(self.effective_min_sup(n_records))
            .with_min_conf(self.min_conf)
            .with_closed_only(!self.all_patterns);
        if let Some(len) = self.max_length {
            config = config.with_max_length(len);
        }
        config
    }
}

/// Parses `--correction` / `--metric` into an approach + metric pair through
/// the shared front-end rules ([`CorrectionApproach::resolve`]): bonferroni/bh
/// imply their metric, contradictions error, and an unknown approach name
/// surfaces the library error — which lists every accepted value — as a
/// usage error (exit code 2).
pub fn parse_correction(args: &ArgMap) -> Result<(CorrectionApproach, ErrorMetric), UsageError> {
    CorrectionApproach::resolve(args.get("correction"), args.get("metric"))
        .map_err(|e| UsageError(format!("--correction/--metric: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_values_switches_and_inline_forms() {
        let args = ArgMap::parse(
            &argv(&["--input", "a.csv", "--min-sup=30", "--tsv"]),
            CommonOpts::SWITCHES,
        )
        .unwrap();
        assert_eq!(args.get("input"), Some("a.csv"));
        assert_eq!(args.get("min-sup"), Some("30"));
        assert!(args.has("tsv"));
        let opts = CommonOpts::from_args(&args).unwrap();
        assert_eq!(opts.separator, '\t');
        assert_eq!(opts.min_sup, Some(30));
        assert_eq!(opts.alpha, 0.05);
    }

    #[test]
    fn rejects_bad_invocations() {
        assert!(ArgMap::parse(&argv(&["positional"]), &[]).is_err());
        assert!(ArgMap::parse(&argv(&["--input"]), &[]).is_err());
        assert!(ArgMap::parse(&argv(&["--tsv=1"]), CommonOpts::SWITCHES).is_err());
        let args = ArgMap::parse(&argv(&["--min-sup", "abc"]), &[]).unwrap();
        assert!(CommonOpts::from_args(&args).is_err());
        let args = ArgMap::parse(&argv(&["--separator", ";;"]), &[]).unwrap();
        assert!(CommonOpts::from_args(&args).is_err());
        let args = ArgMap::parse(&argv(&["--bogus", "1"]), &[]).unwrap();
        assert!(args.reject_unknown(CommonOpts::VALUE_FLAGS).is_err());
    }

    #[test]
    fn class_selector_resolves_index_or_name() {
        let args = ArgMap::parse(&argv(&["--class", "0"]), &[]).unwrap();
        let opts = CommonOpts::from_args(&args).unwrap();
        assert_eq!(opts.load_options().class_column, Some(0));
        let args = ArgMap::parse(&argv(&["--class", "outcome"]), &[]).unwrap();
        let opts = CommonOpts::from_args(&args).unwrap();
        assert_eq!(
            opts.load_options().class_column_name.as_deref(),
            Some("outcome")
        );
    }

    #[test]
    fn correction_and_metric_flags() {
        let args = ArgMap::parse(&argv(&["--correction", "permutation"]), &[]).unwrap();
        let (approach, metric) = parse_correction(&args).unwrap();
        assert_eq!(approach, CorrectionApproach::Permutation);
        assert_eq!(metric, ErrorMetric::Fwer);

        let args = ArgMap::parse(&argv(&["--correction", "bh"]), &[]).unwrap();
        let (approach, metric) = parse_correction(&args).unwrap();
        assert_eq!(approach, CorrectionApproach::Direct);
        assert_eq!(metric, ErrorMetric::Fdr);

        let args = ArgMap::parse(&argv(&["--correction", "bh", "--metric", "fwer"]), &[]).unwrap();
        assert!(parse_correction(&args).is_err());

        let args = ArgMap::parse(&argv(&["--correction", "what"]), &[]).unwrap();
        assert!(parse_correction(&args).is_err());
    }

    #[test]
    fn min_sup_defaults_to_one_percent() {
        let opts = CommonOpts::from_args(&ArgMap::default()).unwrap();
        assert_eq!(opts.effective_min_sup(5000), 50);
        assert_eq!(opts.effective_min_sup(50), 2);
        assert_eq!(opts.mining_config(5000).min_sup, 50);
        assert!(opts.mining_config(5000).closed_only);
    }
}
