//! The [`Dataset`] type: a schema plus its records, with support counting and
//! the bookkeeping the miners and correction approaches need.

use crate::error::DataError;
use crate::item::{ClassId, ItemId, Pattern};
use crate::itemspace::ItemSpace;
use crate::record::Record;
use crate::schema::Schema;
use serde::{Deserialize, Serialize};

/// Per-class record counts of a dataset (`n_c` for every class `c`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassCounts {
    counts: Vec<usize>,
}

impl ClassCounts {
    /// Computes the counts from class labels.
    pub fn from_labels(labels: impl IntoIterator<Item = ClassId>, n_classes: usize) -> Self {
        let mut counts = vec![0usize; n_classes];
        for c in labels {
            counts[c as usize] += 1;
        }
        ClassCounts { counts }
    }

    /// Count of records labelled with class `c`.
    pub fn count(&self, class: ClassId) -> usize {
        self.counts[class as usize]
    }

    /// Total number of records.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.counts.len()
    }

    /// All counts, indexed by class id.
    pub fn as_slice(&self) -> &[usize] {
        &self.counts
    }

    /// Index of the majority class.
    pub fn majority_class(&self) -> ClassId {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i as ClassId)
            .unwrap_or(0)
    }
}

/// A class-labelled dataset over an [`ItemSpace`] (§2.1 of the paper).
///
/// Every record is a set of item ids plus a class label.  When the data came
/// from columnar (attribute-valued) sources the dataset additionally retains
/// the [`Schema`], which fixes one item per column per record and backs CSV
/// export; basket datasets carry no schema and records are free-form itemsets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    item_space: ItemSpace,
    schema: Option<Schema>,
    records: Vec<Record>,
}

impl Dataset {
    /// Creates an attribute-valued dataset after validating every record
    /// against the schema: each record must carry exactly one value per
    /// attribute and a valid class label.
    pub fn new(schema: Schema, records: Vec<Record>) -> Result<Self, DataError> {
        for r in &records {
            if r.len() != schema.n_attributes() {
                return Err(DataError::WrongArity {
                    got: r.len(),
                    expected: schema.n_attributes(),
                });
            }
            if r.class() as usize >= schema.n_classes() {
                return Err(DataError::UnknownClass {
                    class: r.class() as usize,
                });
            }
            for (attr, &item) in r.items().iter().enumerate() {
                let decoded = schema.decode(item)?;
                if decoded.attribute != attr {
                    return Err(DataError::invalid_schema(format!(
                        "record item {item} at position {attr} belongs to attribute {}",
                        decoded.attribute
                    )));
                }
            }
        }
        Ok(Dataset::new_unchecked(schema, records))
    }

    /// Creates an attribute-valued dataset without per-record validation.
    /// Intended for generators that construct records directly from the
    /// schema and for performance-sensitive paths (e.g. building thousands of
    /// synthetic datasets); invariants are still expected to hold.
    pub fn new_unchecked(schema: Schema, records: Vec<Record>) -> Self {
        Dataset {
            item_space: ItemSpace::from_schema(&schema),
            schema: Some(schema),
            records,
        }
    }

    /// Creates a schema-free dataset (market-basket transactions) over an
    /// item space: records may carry any number of items, each item id must
    /// exist in the space, and duplicate items within a record have already
    /// been collapsed by [`Record::new`].
    pub fn from_baskets(item_space: ItemSpace, records: Vec<Record>) -> Result<Self, DataError> {
        let n_items = item_space.n_items();
        let n_classes = item_space.n_classes();
        for r in &records {
            if let Some(&item) = r.items().iter().find(|&&i| i as usize >= n_items) {
                return Err(DataError::UnknownItem {
                    item: item as usize,
                    n_items,
                });
            }
            if r.class() as usize >= n_classes {
                return Err(DataError::UnknownClass {
                    class: r.class() as usize,
                });
            }
        }
        Ok(Dataset {
            item_space,
            schema: None,
            records,
        })
    }

    /// The item universe of the dataset.
    pub fn item_space(&self) -> &ItemSpace {
        &self.item_space
    }

    /// The attribute schema, when the dataset came from columnar data
    /// (`None` for basket datasets).
    pub fn schema(&self) -> Option<&Schema> {
        self.schema.as_ref()
    }

    /// Number of distinct items of the item space.
    pub fn n_items(&self) -> usize {
        self.item_space.n_items()
    }

    /// Number of source columns, when the data is columnar.
    pub fn n_columns(&self) -> Option<usize> {
        self.item_space.n_columns()
    }

    /// The records.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Number of records (`n` in the paper).
    pub fn n_records(&self) -> usize {
        self.records.len()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.item_space.n_classes()
    }

    /// The class label of every record, in record order.
    pub fn class_labels(&self) -> Vec<ClassId> {
        self.records.iter().map(Record::class).collect()
    }

    /// Per-class record counts.
    pub fn class_counts(&self) -> ClassCounts {
        ClassCounts::from_labels(self.records.iter().map(Record::class), self.n_classes())
    }

    /// Support of a single item: the number of records containing it.
    pub fn item_support(&self, item: ItemId) -> usize {
        self.records
            .iter()
            .filter(|r| r.contains_item(item))
            .count()
    }

    /// Support of a pattern by a linear scan (`supp(X)`, §2.1).  The miners
    /// use the vertical representation instead; this is the reference
    /// implementation used in tests and by small examples.
    pub fn support(&self, pattern: &Pattern) -> usize {
        self.records
            .iter()
            .filter(|r| r.contains_pattern(pattern))
            .count()
    }

    /// Support of a rule `X ⇒ c`: records containing `X` *and* labelled `c`.
    pub fn rule_support(&self, pattern: &Pattern, class: ClassId) -> usize {
        self.records
            .iter()
            .filter(|r| r.class() == class && r.contains_pattern(pattern))
            .count()
    }

    /// Record ids (tids) of the records containing a pattern.
    pub fn tids_of(&self, pattern: &Pattern) -> Vec<u32> {
        self.records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.contains_pattern(pattern))
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Returns a copy of the dataset with the class labels replaced by
    /// `labels` (record order).  Used by the permutation approach.
    pub fn with_class_labels(&self, labels: &[ClassId]) -> Result<Self, DataError> {
        if labels.len() != self.records.len() {
            return Err(DataError::WrongArity {
                got: labels.len(),
                expected: self.records.len(),
            });
        }
        let mut records = self.records.clone();
        for (r, &c) in records.iter_mut().zip(labels) {
            if c as usize >= self.n_classes() {
                return Err(DataError::UnknownClass { class: c as usize });
            }
            r.set_class(c);
        }
        Ok(self.with_records(records))
    }

    /// A copy of the dataset with the records replaced (same item space and
    /// schema).
    fn with_records(&self, records: Vec<Record>) -> Dataset {
        Dataset {
            item_space: self.item_space.clone(),
            schema: self.schema.clone(),
            records,
        }
    }

    /// Splits the dataset into two halves by record index: records
    /// `[0, split)` and `[split, n)`.  Used by the paper's "holdout" variant
    /// that concatenates two independently generated sub-datasets.
    pub fn split_at(&self, split: usize) -> (Dataset, Dataset) {
        let split = split.min(self.records.len());
        (
            self.with_records(self.records[..split].to_vec()),
            self.with_records(self.records[split..].to_vec()),
        )
    }

    /// Splits the dataset into two according to a membership mask
    /// (`true` → first dataset).  Used by the "random holdout" variant.
    pub fn split_by_mask(&self, mask: &[bool]) -> Result<(Dataset, Dataset), DataError> {
        if mask.len() != self.records.len() {
            return Err(DataError::WrongArity {
                got: mask.len(),
                expected: self.records.len(),
            });
        }
        let mut first = Vec::new();
        let mut second = Vec::new();
        for (r, &m) in self.records.iter().zip(mask) {
            if m {
                first.push(r.clone());
            } else {
                second.push(r.clone());
            }
        }
        Ok((self.with_records(first), self.with_records(second)))
    }

    /// Concatenates two datasets over the same item space (and schema, when
    /// present).
    pub fn concat(&self, other: &Dataset) -> Result<Dataset, DataError> {
        if self.item_space != other.item_space || self.schema != other.schema {
            return Err(DataError::invalid_schema(
                "cannot concatenate datasets with different item spaces",
            ));
        }
        let mut records = self.records.clone();
        records.extend(other.records.iter().cloned());
        Ok(self.with_records(records))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    /// A small hand-checkable dataset:
    ///
    /// | record | A0 | A1 | class |
    /// |--------|----|----|-------|
    /// | 0      | a  | x  | 0     |
    /// | 1      | a  | y  | 0     |
    /// | 2      | b  | x  | 1     |
    /// | 3      | a  | x  | 1     |
    /// | 4      | b  | y  | 0     |
    fn toy() -> Dataset {
        let schema = Schema::new(
            vec![
                Attribute::new("A0", vec!["a".into(), "b".into()]),
                Attribute::new("A1", vec!["x".into(), "y".into()]),
            ],
            vec!["c0".into(), "c1".into()],
        )
        .unwrap();
        // item ids: A0=a → 0, A0=b → 1, A1=x → 2, A1=y → 3
        let records = vec![
            Record::new(vec![0, 2], 0),
            Record::new(vec![0, 3], 0),
            Record::new(vec![1, 2], 1),
            Record::new(vec![0, 2], 1),
            Record::new(vec![1, 3], 0),
        ];
        Dataset::new(schema, records).unwrap()
    }

    #[test]
    fn basic_counts() {
        let d = toy();
        assert_eq!(d.n_records(), 5);
        assert_eq!(d.n_classes(), 2);
        let cc = d.class_counts();
        assert_eq!(cc.count(0), 3);
        assert_eq!(cc.count(1), 2);
        assert_eq!(cc.total(), 5);
        assert_eq!(cc.majority_class(), 0);
    }

    #[test]
    fn support_counting() {
        let d = toy();
        assert_eq!(d.item_support(0), 3); // A0=a
        assert_eq!(d.item_support(2), 3); // A1=x
        assert_eq!(d.support(&Pattern::from_items([0, 2])), 2);
        assert_eq!(d.support(&Pattern::empty()), 5);
        assert_eq!(d.rule_support(&Pattern::from_items([0]), 0), 2);
        assert_eq!(d.rule_support(&Pattern::from_items([0, 2]), 1), 1);
        assert_eq!(d.tids_of(&Pattern::from_items([0, 2])), vec![0, 3]);
    }

    #[test]
    fn validation_rejects_bad_records() {
        let schema = Schema::synthetic(&[2, 2], 2).unwrap();
        // wrong arity
        assert!(Dataset::new(schema.clone(), vec![Record::new(vec![0], 0)]).is_err());
        // unknown class
        assert!(Dataset::new(schema.clone(), vec![Record::new(vec![0, 2], 5)]).is_err());
        // two values for the same attribute
        assert!(Dataset::new(schema, vec![Record::new(vec![0, 1], 0)]).is_err());
    }

    #[test]
    fn with_class_labels_replaces_labels() {
        let d = toy();
        let relabelled = d.with_class_labels(&[1, 1, 0, 0, 1]).unwrap();
        assert_eq!(relabelled.class_labels(), vec![1, 1, 0, 0, 1]);
        // structure untouched
        assert_eq!(relabelled.support(&Pattern::from_items([0, 2])), 2);
        // errors
        assert!(d.with_class_labels(&[0, 1]).is_err());
        assert!(d.with_class_labels(&[0, 1, 2, 0, 1]).is_err());
    }

    #[test]
    fn split_and_concat_round_trip() {
        let d = toy();
        let (a, b) = d.split_at(2);
        assert_eq!(a.n_records(), 2);
        assert_eq!(b.n_records(), 3);
        let back = a.concat(&b).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn split_by_mask() {
        let d = toy();
        let (a, b) = d.split_by_mask(&[true, false, true, false, true]).unwrap();
        assert_eq!(a.n_records(), 3);
        assert_eq!(b.n_records(), 2);
        assert!(d.split_by_mask(&[true]).is_err());
    }

    #[test]
    fn basket_dataset_allows_variable_arity() {
        let space = crate::itemspace::ItemSpace::baskets(
            ["milk", "bread", "beer", "eggs"].map(String::from),
            vec!["weekday".into(), "weekend".into()],
        )
        .unwrap();
        let records = vec![
            Record::new(vec![0, 1], 0),
            Record::new(vec![0, 1, 2, 3], 1),
            Record::new(vec![2], 1),
            Record::new(vec![0, 1, 3], 0),
        ];
        let d = Dataset::from_baskets(space.clone(), records).unwrap();
        assert_eq!(d.n_records(), 4);
        assert_eq!(d.n_items(), 4);
        assert_eq!(d.n_columns(), None);
        assert!(d.schema().is_none());
        assert_eq!(d.support(&Pattern::from_items([0, 1])), 3);
        assert_eq!(d.rule_support(&Pattern::from_items([0, 1]), 0), 2);

        // out-of-range item / class are rejected
        assert!(Dataset::from_baskets(space.clone(), vec![Record::new(vec![9], 0)]).is_err());
        assert!(Dataset::from_baskets(space, vec![Record::new(vec![0], 7)]).is_err());
    }

    #[test]
    fn basket_dataset_split_and_relabel_preserve_the_space() {
        let space = crate::itemspace::ItemSpace::baskets(
            ["a", "b", "c"].map(String::from),
            vec!["x".into(), "y".into()],
        )
        .unwrap();
        let records = vec![
            Record::new(vec![0, 1], 0),
            Record::new(vec![1, 2], 1),
            Record::new(vec![0, 2], 0),
        ];
        let d = Dataset::from_baskets(space, records).unwrap();
        let relabelled = d.with_class_labels(&[1, 0, 1]).unwrap();
        assert!(relabelled.schema().is_none());
        assert_eq!(relabelled.item_space(), d.item_space());
        let (a, b) = d.split_at(2);
        assert_eq!(a.n_records(), 2);
        assert_eq!(b.n_records(), 1);
        let back = a.concat(&b).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn class_counts_from_labels() {
        let cc = ClassCounts::from_labels([0u32, 1, 1, 2, 1], 3);
        assert_eq!(cc.as_slice(), &[1, 3, 1]);
        assert_eq!(cc.n_classes(), 3);
        assert_eq!(cc.majority_class(), 1);
    }
}
