//! Records: one item per attribute plus a class label.

use crate::item::{ClassId, ItemId, Pattern};
use serde::{Deserialize, Serialize};

/// A single record of an attribute-valued, class-labelled dataset.
///
/// A record stores exactly one item (attribute/value pair) per attribute, as
/// a sorted vector of dense item ids, plus its class label.  Because item ids
/// are assigned attribute-by-attribute, sorting by id also sorts by attribute,
/// so the `i`-th entry always belongs to attribute `i`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Record {
    items: Vec<ItemId>,
    class: ClassId,
}

impl Record {
    /// Creates a record from its items (any order) and its class label.  The
    /// items are sorted into canonical order and duplicates are collapsed, so
    /// an item repeated within one transaction counts once.
    pub fn new(mut items: Vec<ItemId>, class: ClassId) -> Self {
        items.sort_unstable();
        items.dedup();
        Record { items, class }
    }

    /// The record's items, sorted ascending.
    pub fn items(&self) -> &[ItemId] {
        &self.items
    }

    /// The record's class label.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// Overrides the class label (used by the permutation engine when
    /// shuffling labels).
    pub fn set_class(&mut self, class: ClassId) {
        self.class = class;
    }

    /// True if the record contains the given item.
    pub fn contains_item(&self, item: ItemId) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// True if the record contains every item of the pattern
    /// (`pattern ⊆ record`, §2.1).
    pub fn contains_pattern(&self, pattern: &Pattern) -> bool {
        let mut pos = 0usize;
        for &x in pattern.items() {
            while pos < self.items.len() && self.items[pos] < x {
                pos += 1;
            }
            if pos >= self.items.len() || self.items[pos] != x {
                return false;
            }
            pos += 1;
        }
        true
    }

    /// Number of items (equals the number of attributes of the schema the
    /// record belongs to).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the record carries no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_sorts_items() {
        let r = Record::new(vec![7, 2, 5], 1);
        assert_eq!(r.items(), &[2, 5, 7]);
        assert_eq!(r.class(), 1);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
    }

    #[test]
    fn construction_dedups_items() {
        let r = Record::new(vec![4, 2, 4, 4, 2], 0);
        assert_eq!(r.items(), &[2, 4]);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn contains_item() {
        let r = Record::new(vec![1, 4, 9], 0);
        assert!(r.contains_item(4));
        assert!(!r.contains_item(5));
    }

    #[test]
    fn contains_pattern() {
        let r = Record::new(vec![1, 4, 9, 12], 0);
        assert!(r.contains_pattern(&Pattern::from_items([1, 9])));
        assert!(r.contains_pattern(&Pattern::from_items([4])));
        assert!(r.contains_pattern(&Pattern::empty()));
        assert!(!r.contains_pattern(&Pattern::from_items([1, 2])));
        assert!(!r.contains_pattern(&Pattern::from_items([13])));
    }

    #[test]
    fn set_class_overrides_label() {
        let mut r = Record::new(vec![0], 0);
        r.set_class(3);
        assert_eq!(r.class(), 3);
    }
}
