//! The [`ItemSpace`]: one internal universe of item ids, regardless of where
//! the items came from.
//!
//! The paper's statistics (§2–4) are defined over generic itemsets: a record
//! is a set of items, a pattern is a set of items, and a rule `X ⇒ c` needs
//! only supports and class labels.  Attribute-valued records (where every item
//! is an `attribute=value` pair and each record carries exactly one item per
//! attribute) are just one way of *producing* items; market-basket
//! transactions (arbitrary sets of tokens) are another.  The `ItemSpace`
//! factors that difference out of the rest of the stack: every dataset —
//! loaded from CSV rows, from basket lines, or generated synthetically —
//! compiles its items into one dense id space, and miners, corrections and
//! renderers speak item ids only.
//!
//! Each item keeps its [`ItemProvenance`] so reports can render it the way the
//! source data would (`education=tertiary` for an attribute item, `milk` for a
//! basket token), and so attribute-specific machinery (CSV export, per-column
//! validation) can recover the column structure when it exists.

use crate::error::DataError;
use crate::item::{ClassId, ItemId};
use crate::schema::Schema;
use serde::{Deserialize, Serialize};

/// Where an item came from.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ItemProvenance {
    /// An `attribute=value` pair from columnar data: `column` indexes the
    /// source column, `value` the value within that column's domain.
    Attribute {
        /// Index of the source column.
        column: usize,
        /// Index of the value within the column's domain.
        value: usize,
    },
    /// A token from transaction (market-basket) data.
    Basket {
        /// The token as it appeared in the source data.
        token: String,
    },
}

/// One item of the space: its display name plus its provenance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ItemDef {
    /// Human-readable name (`age=23-30`, `milk`).
    pub name: String,
    /// Where the item came from.
    pub provenance: ItemProvenance,
}

/// A dense universe of items plus the class label domain — the layer every
/// crate of this workspace speaks.
///
/// Item ids are the indices into the item list; class ids index the class
/// list.  An `ItemSpace` is immutable once built: loaders and generators
/// assemble it, everything downstream only reads it.  Cloning copies the
/// item-name vector; on the dataset paths that matters (splits, label swaps)
/// the cost is dominated by the record clones alongside it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ItemSpace {
    items: Vec<ItemDef>,
    /// Column names when the items carry attribute provenance; empty for
    /// basket spaces.
    columns: Vec<String>,
    classes: Vec<String>,
}

impl ItemSpace {
    /// Builds an item space from explicit item definitions.
    ///
    /// Requires at least one item and at least two class labels (a class
    /// association rule `X ⇒ c` needs an alternative to `c`).
    pub fn new(
        items: Vec<ItemDef>,
        columns: Vec<String>,
        classes: Vec<String>,
    ) -> Result<Self, DataError> {
        if items.is_empty() {
            return Err(DataError::invalid_schema("item space has no items"));
        }
        if classes.len() < 2 {
            return Err(DataError::invalid_schema(
                "item space needs at least two class labels",
            ));
        }
        Ok(ItemSpace {
            items,
            columns,
            classes,
        })
    }

    /// Compiles an attribute [`Schema`] into an item space: one item per
    /// attribute/value pair, named `attribute=value`, ids in the schema's
    /// dense order.
    pub fn from_schema(schema: &Schema) -> Self {
        let mut items = Vec::with_capacity(schema.n_items());
        for (column, attribute) in schema.attributes().iter().enumerate() {
            for (value, value_name) in attribute.values.iter().enumerate() {
                items.push(ItemDef {
                    name: format!("{}={}", attribute.name, value_name),
                    provenance: ItemProvenance::Attribute { column, value },
                });
            }
        }
        ItemSpace {
            items,
            columns: schema.attributes().iter().map(|a| a.name.clone()).collect(),
            classes: schema.classes().to_vec(),
        }
    }

    /// Builds a basket item space from tokens (one item per token, named by
    /// the token) and class label names.
    pub fn baskets(
        tokens: impl IntoIterator<Item = String>,
        classes: Vec<String>,
    ) -> Result<Self, DataError> {
        let items = tokens
            .into_iter()
            .map(|token| ItemDef {
                name: token.clone(),
                provenance: ItemProvenance::Basket { token },
            })
            .collect();
        ItemSpace::new(items, Vec::new(), classes)
    }

    /// Number of distinct items.
    pub fn n_items(&self) -> usize {
        self.items.len()
    }

    /// Number of class labels.
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// The item definitions, indexed by item id.
    pub fn items(&self) -> &[ItemDef] {
        &self.items
    }

    /// The class label names.
    pub fn classes(&self) -> &[String] {
        &self.classes
    }

    /// Source column names; empty for basket spaces.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of source columns, when the items carry attribute provenance.
    pub fn n_columns(&self) -> Option<usize> {
        if self.columns.is_empty() {
            None
        } else {
            Some(self.columns.len())
        }
    }

    /// True when every item carries basket provenance.
    pub fn is_basket(&self) -> bool {
        self.items
            .iter()
            .all(|i| matches!(i.provenance, ItemProvenance::Basket { .. }))
    }

    /// The provenance of an item.
    pub fn provenance(&self, item: ItemId) -> Result<&ItemProvenance, DataError> {
        self.items
            .get(item as usize)
            .map(|i| &i.provenance)
            .ok_or(DataError::UnknownAttribute {
                index: item as usize,
            })
    }

    /// Human-readable rendering of an item (`education=tertiary`, `milk`).
    pub fn describe_item(&self, item: ItemId) -> String {
        match self.items.get(item as usize) {
            Some(def) => def.name.clone(),
            None => format!("<invalid item {item}>"),
        }
    }

    /// Id of the item with the given display name, if present (linear scan;
    /// loaders that intern many tokens keep their own map).
    pub fn item_named(&self, name: &str) -> Option<ItemId> {
        self.items
            .iter()
            .position(|i| i.name == name)
            .map(|i| i as ItemId)
    }

    /// Name of a class label.
    pub fn class_name(&self, class: ClassId) -> Result<&str, DataError> {
        self.classes
            .get(class as usize)
            .map(String::as_str)
            .ok_or(DataError::UnknownClass {
                class: class as usize,
            })
    }

    /// Index of a class label by name.
    pub fn class_index(&self, name: &str) -> Option<ClassId> {
        self.classes
            .iter()
            .position(|c| c == name)
            .map(|i| i as ClassId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn basket_space() -> ItemSpace {
        ItemSpace::baskets(
            ["milk", "bread", "beer"].map(String::from),
            vec!["yes".into(), "no".into()],
        )
        .unwrap()
    }

    #[test]
    fn from_schema_matches_the_schema_numbering() {
        let schema = Schema::new(
            vec![
                Attribute::new("color", vec!["red".into(), "blue".into()]),
                Attribute::new("size", vec!["small".into(), "large".into()]),
            ],
            vec!["yes".into(), "no".into()],
        )
        .unwrap();
        let space = ItemSpace::from_schema(&schema);
        assert_eq!(space.n_items(), schema.n_items());
        assert_eq!(space.n_classes(), 2);
        assert_eq!(space.n_columns(), Some(2));
        assert!(!space.is_basket());
        for item in 0..schema.n_items() as ItemId {
            assert_eq!(space.describe_item(item), schema.describe_item(item));
            let decoded = schema.decode(item).unwrap();
            assert_eq!(
                space.provenance(item).unwrap(),
                &ItemProvenance::Attribute {
                    column: decoded.attribute,
                    value: decoded.value
                }
            );
        }
        assert_eq!(space.columns(), &["color".to_string(), "size".to_string()]);
    }

    #[test]
    fn basket_space_names_and_lookup() {
        let space = basket_space();
        assert_eq!(space.n_items(), 3);
        assert!(space.is_basket());
        assert_eq!(space.n_columns(), None);
        assert_eq!(space.describe_item(0), "milk");
        assert_eq!(space.item_named("beer"), Some(2));
        assert_eq!(space.item_named("wine"), None);
        assert_eq!(
            space.provenance(1).unwrap(),
            &ItemProvenance::Basket {
                token: "bread".into()
            }
        );
        assert!(space.provenance(9).is_err());
        assert!(space.describe_item(9).contains("invalid"));
    }

    #[test]
    fn class_lookups() {
        let space = basket_space();
        assert_eq!(space.class_name(0).unwrap(), "yes");
        assert_eq!(space.class_index("no"), Some(1));
        assert_eq!(space.class_index("maybe"), None);
        assert!(space.class_name(5).is_err());
    }

    #[test]
    fn validation() {
        assert!(ItemSpace::baskets(Vec::<String>::new(), vec!["a".into(), "b".into()]).is_err());
        assert!(ItemSpace::baskets(["x".to_string()], vec!["only".into()]).is_err());
    }
}
