//! Explicit SIMD bitmap kernels with runtime dispatch.
//!
//! Every support count the permutation engine performs bottoms out in one of
//! a handful of word-sweep kernels over packed `u64` bitmap words:
//! intersect-and-popcount ([`and_count`]), plain popcount ([`count_ones`]),
//! complement intersect ([`andnot_count`] — the primitive negative-rule
//! covers need), and the batched variants that sweep one cover against a
//! whole *lane block* of permuted class bitmaps at once ([`and_count_many`],
//! [`count_ones_many`], [`gather_count_many`]).
//!
//! Three implementations back each kernel:
//!
//! | kind     | selected when                                   | technique |
//! |----------|--------------------------------------------------|-----------|
//! | `scalar` | always available                                 | 4×u64-unrolled loops the compiler autovectorises |
//! | `avx2`   | x86/x86_64 with AVX2 (runtime-detected)          | 256-bit `AND` + Mula nibble-LUT popcount (`pshufb` + `psadbw`) |
//! | `neon`   | aarch64 (NEON is architecturally guaranteed)     | 128-bit `AND` + `vcnt`/`vaddlv` byte popcount |
//!
//! The active kind is resolved **once** per process — from the
//! `SIGRULE_KERNEL` environment variable (`scalar`, `simd`, or `auto`; an
//! unsupported `simd` request falls back to scalar) and runtime feature
//! detection — and cached in an atomic, so dispatch on the hot path is one
//! relaxed load and a predictable branch.  [`force`] overrides the selection
//! at runtime for A/B tests and benchmarks.
//!
//! Every kernel returns exact integer counts, so the three implementations
//! are interchangeable bit for bit; `tests/kernel_equivalence.rs` proves it
//! over random word vectors including non-multiple-of-4 tails.
//!
//! # Lane blocks (batched layout)
//!
//! The batched kernels read a *transposed* block of `lanes` equally sized
//! bitmaps: word `w` of lane `l` lives at `block[w * lanes + l]`, so all
//! lanes' copies of one word index are contiguous.  A sweep then loads each
//! cover word **once** and `AND`s it against `lanes` adjacent permuted label
//! words — the cache-blocked inner loop of the batched permutation engine
//! (see [`LaneBlock`](crate::vertical::LaneBlock)).

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering::Relaxed};

/// A kernel implementation family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Unrolled scalar loops (always available, autovectorisable).
    Scalar,
    /// 256-bit AVX2 lanes (x86/x86_64, runtime-detected).
    Avx2,
    /// 128-bit NEON lanes (aarch64).
    Neon,
}

impl KernelKind {
    /// Stable lower-case name (`"scalar"`, `"avx2"`, `"neon"`), as surfaced
    /// in `EngineStats` and the serve `stats` response.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Avx2 => "avx2",
            KernelKind::Neon => "neon",
        }
    }

    fn code(self) -> u8 {
        match self {
            KernelKind::Scalar => 1,
            KernelKind::Avx2 => 2,
            KernelKind::Neon => 3,
        }
    }

    fn from_code(code: u8) -> Option<KernelKind> {
        match code {
            1 => Some(KernelKind::Scalar),
            2 => Some(KernelKind::Avx2),
            3 => Some(KernelKind::Neon),
            _ => None,
        }
    }
}

/// The cached dispatch decision: 0 = not yet resolved, otherwise
/// `KernelKind::code()`.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// The SIMD kind this build + machine supports, if any.
pub fn simd_kind() -> Option<KernelKind> {
    #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Some(KernelKind::Avx2);
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON is architecturally guaranteed on aarch64.
        return Some(KernelKind::Neon);
    }
    #[allow(unreachable_code)]
    None
}

/// Pure resolution rule: what `SIGRULE_KERNEL` (if set) and the machine's
/// SIMD support select.  `simd` with no SIMD support falls back to scalar —
/// the runtime feature-detection fallback the unit tests pin.
pub fn resolve(env: Option<&str>, simd: Option<KernelKind>) -> KernelKind {
    match env.map(str::trim) {
        Some("scalar") => KernelKind::Scalar,
        // `simd` and `auto` (and anything unrecognised) both take the best
        // the machine offers; `simd` simply has nothing stricter to ask for
        // on stable Rust than "the detected SIMD path, if any".
        _ => simd.unwrap_or(KernelKind::Scalar),
    }
}

/// The active kernel kind, resolved once from `SIGRULE_KERNEL` + feature
/// detection and cached.
pub fn kind() -> KernelKind {
    match KernelKind::from_code(ACTIVE.load(Relaxed)) {
        Some(kind) => kind,
        None => {
            let env = std::env::var("SIGRULE_KERNEL").ok();
            let resolved = resolve(env.as_deref(), simd_kind());
            ACTIVE.store(resolved.code(), Relaxed);
            resolved
        }
    }
}

/// Overrides the active kernel kind (benchmark / A-B-test hook); `None`
/// re-resolves from the environment on the next call to [`kind`].  Forcing a
/// SIMD kind the machine does not support would execute illegal
/// instructions, so unsupported requests degrade to scalar here too.
pub fn force(kind: Option<KernelKind>) {
    let code = match kind {
        None => 0,
        Some(KernelKind::Scalar) => KernelKind::Scalar.code(),
        Some(requested) => {
            if simd_kind() == Some(requested) {
                requested.code()
            } else {
                KernelKind::Scalar.code()
            }
        }
    };
    ACTIVE.store(code, Relaxed);
}

// ---------------------------------------------------------------------------
// Sweep counters (process-wide observability, surfaced via EngineStats).
// ---------------------------------------------------------------------------

static BATCHED_SWEEPS: AtomicU64 = AtomicU64::new(0);
static PER_PERM_SWEEPS: AtomicU64 = AtomicU64::new(0);

/// Records `n` batched (lane-block) forest sweeps.
pub fn note_batched_sweeps(n: u64) {
    BATCHED_SWEEPS.fetch_add(n, Relaxed);
}

/// Records `n` per-permutation forest sweeps.
pub fn note_per_perm_sweeps(n: u64) {
    PER_PERM_SWEEPS.fetch_add(n, Relaxed);
}

/// Process-wide kernel dispatch observability: which kernel kind is active
/// and how many forest sweeps ran batched vs. per permutation.  Counters are
/// cumulative over the process (they exist for dashboards and the serve
/// `stats` surface, not for per-engine accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelCounters {
    /// Active kernel kind name (`"scalar"`, `"avx2"`, `"neon"`).
    pub kernel: &'static str,
    /// Forest sweeps that ran through the batched lane-block path.
    pub batched_sweeps: u64,
    /// Forest sweeps that ran one permutation at a time.
    pub per_perm_sweeps: u64,
}

/// A snapshot of the process-wide kernel counters.
pub fn counters() -> KernelCounters {
    KernelCounters {
        kernel: kind().name(),
        batched_sweeps: BATCHED_SWEEPS.load(Relaxed),
        per_perm_sweeps: PER_PERM_SWEEPS.load(Relaxed),
    }
}

// ---------------------------------------------------------------------------
// Dispatching kernels.
// ---------------------------------------------------------------------------

/// `|a ∩ b|`: word-wise `AND` + popcount over the common prefix of the two
/// word slices.  Callers with equal-length guarantees should debug-assert
/// them; the kernel itself only ever reads `min(len)` words.
#[inline]
pub fn and_count(a: &[u64], b: &[u64]) -> usize {
    match kind() {
        #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
        // SAFETY: `kind()` only returns Avx2 after runtime detection.
        KernelKind::Avx2 => unsafe { avx2::and_count(a, b) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is architecturally guaranteed on aarch64.
        KernelKind::Neon => unsafe { neon::and_count(a, b) },
        _ => scalar::and_count(a, b),
    }
}

/// `|a \ b|`: word-wise `AND NOT` + popcount over the common prefix.  The
/// complement-cover primitive (`supp(¬B)` relative to a cover) negative
/// association rules build on.
#[inline]
pub fn andnot_count(a: &[u64], b: &[u64]) -> usize {
    match kind() {
        #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
        // SAFETY: `kind()` only returns Avx2 after runtime detection.
        KernelKind::Avx2 => unsafe { avx2::andnot_count(a, b) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is architecturally guaranteed on aarch64.
        KernelKind::Neon => unsafe { neon::andnot_count(a, b) },
        _ => scalar::andnot_count(a, b),
    }
}

/// `|a|`: popcount of a word slice.
#[inline]
pub fn count_ones(a: &[u64]) -> usize {
    match kind() {
        #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
        // SAFETY: `kind()` only returns Avx2 after runtime detection.
        KernelKind::Avx2 => unsafe { avx2::count_ones(a) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is architecturally guaranteed on aarch64.
        KernelKind::Neon => unsafe { neon::count_ones(a) },
        _ => scalar::count_ones(a),
    }
}

/// Batched `AND` + popcount: writes `acc[l] = |cover ∩ lane l|` for every
/// lane of a transposed block (`block[w * lanes + l]` = word `w` of lane
/// `l`).  Each cover word is loaded once and swept against `lanes` adjacent
/// block words — the cache-blocked batched-permutation kernel.
///
/// # Panics
///
/// Panics if `acc.len() < lanes` or the block is not `cover.len() * lanes`
/// words.
#[inline]
pub fn and_count_many(cover: &[u64], block: &[u64], lanes: usize, acc: &mut [u32]) {
    assert!(acc.len() >= lanes, "need one accumulator per lane");
    assert_eq!(block.len(), cover.len() * lanes, "block shape mismatch");
    match kind() {
        #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
        // SAFETY: `kind()` only returns Avx2 after runtime detection.
        KernelKind::Avx2 => unsafe { avx2::and_count_many(cover, block, lanes, acc) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is architecturally guaranteed on aarch64.
        KernelKind::Neon => unsafe { neon::and_count_many(cover, block, lanes, acc) },
        _ => scalar::and_count_many(cover, block, lanes, acc),
    }
}

/// Batched popcount: writes `acc[l] = |lane l|` for every lane of a
/// transposed block of `words_per_lane * lanes` words.
///
/// # Panics
///
/// Panics if `acc.len() < lanes` or the block length is not a multiple of
/// `lanes`.
#[inline]
pub fn count_ones_many(block: &[u64], lanes: usize, acc: &mut [u32]) {
    assert!(acc.len() >= lanes, "need one accumulator per lane");
    assert!(
        lanes > 0 && block.len().is_multiple_of(lanes),
        "block shape mismatch"
    );
    scalar_count_ones_many_dispatch(block, lanes, acc);
}

#[inline]
fn scalar_count_ones_many_dispatch(block: &[u64], lanes: usize, acc: &mut [u32]) {
    match kind() {
        #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
        // SAFETY: `kind()` only returns Avx2 after runtime detection.
        KernelKind::Avx2 => unsafe { avx2::count_ones_many(block, lanes, acc) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is architecturally guaranteed on aarch64.
        KernelKind::Neon => unsafe { neon::count_ones_many(block, lanes, acc) },
        _ => scalar::count_ones_many(block, lanes, acc),
    }
}

/// Batched sparse membership count: writes `acc[l]` = how many of the sorted
/// record ids in `tids` have their bit set in lane `l` of the transposed
/// block.  This is the tid-list counting kernel of the batched permutation
/// path: one cache line of the block serves all lanes of one id (and, for
/// clustered ids, up to 64 consecutive ids).
///
/// # Panics
///
/// Panics if `acc.len() < lanes`, the block length is not a multiple of
/// `lanes`, or a tid indexes past the block.
#[inline]
pub fn gather_count_many(tids: &[u32], block: &[u64], lanes: usize, acc: &mut [u32]) {
    assert!(acc.len() >= lanes, "need one accumulator per lane");
    assert!(
        lanes > 0 && block.len().is_multiple_of(lanes),
        "block shape mismatch"
    );
    if let Some(&max) = tids.last() {
        assert!(
            (max as usize / 64 + 1) * lanes <= block.len(),
            "tid {max} out of range for the block"
        );
    }
    match kind() {
        #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
        // SAFETY: `kind()` only returns Avx2 after runtime detection; the
        // bound check above covers every lane-group load.
        KernelKind::Avx2 => unsafe { avx2::gather_count_many(tids, block, lanes, acc) },
        _ => scalar::gather_count_many(tids, block, lanes, acc),
    }
}

// ---------------------------------------------------------------------------
// Scalar baseline: 4×u64-unrolled, autovectorisable, explicit tail handling.
// ---------------------------------------------------------------------------

/// The always-available scalar kernels; public so equivalence tests and the
/// microbenchmarks can pin an implementation regardless of dispatch.
pub mod scalar {
    /// Scalar `|a ∩ b|` over the common prefix (4×u64 unrolled + tail loop).
    #[inline]
    pub fn and_count(a: &[u64], b: &[u64]) -> usize {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let mut sums = [0usize; 4];
        let mut i = 0;
        while i + 4 <= n {
            sums[0] += (a[i] & b[i]).count_ones() as usize;
            sums[1] += (a[i + 1] & b[i + 1]).count_ones() as usize;
            sums[2] += (a[i + 2] & b[i + 2]).count_ones() as usize;
            sums[3] += (a[i + 3] & b[i + 3]).count_ones() as usize;
            i += 4;
        }
        // Tail: up to 3 words past the last full 4-word group.
        while i < n {
            sums[0] += (a[i] & b[i]).count_ones() as usize;
            i += 1;
        }
        sums.iter().sum()
    }

    /// Scalar `|a \ b|` over the common prefix.
    #[inline]
    pub fn andnot_count(a: &[u64], b: &[u64]) -> usize {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let mut sums = [0usize; 4];
        let mut i = 0;
        while i + 4 <= n {
            sums[0] += (a[i] & !b[i]).count_ones() as usize;
            sums[1] += (a[i + 1] & !b[i + 1]).count_ones() as usize;
            sums[2] += (a[i + 2] & !b[i + 2]).count_ones() as usize;
            sums[3] += (a[i + 3] & !b[i + 3]).count_ones() as usize;
            i += 4;
        }
        while i < n {
            sums[0] += (a[i] & !b[i]).count_ones() as usize;
            i += 1;
        }
        sums.iter().sum()
    }

    /// Scalar popcount (4×u64 unrolled + tail loop).
    #[inline]
    pub fn count_ones(a: &[u64]) -> usize {
        let mut sums = [0usize; 4];
        let mut i = 0;
        while i + 4 <= a.len() {
            sums[0] += a[i].count_ones() as usize;
            sums[1] += a[i + 1].count_ones() as usize;
            sums[2] += a[i + 2].count_ones() as usize;
            sums[3] += a[i + 3].count_ones() as usize;
            i += 4;
        }
        while i < a.len() {
            sums[0] += a[i].count_ones() as usize;
            i += 1;
        }
        sums.iter().sum()
    }

    /// Scalar batched `AND` + popcount over a transposed block.
    #[inline]
    pub fn and_count_many(cover: &[u64], block: &[u64], lanes: usize, acc: &mut [u32]) {
        acc[..lanes].fill(0);
        for (w, &c) in cover.iter().enumerate() {
            let row = &block[w * lanes..(w + 1) * lanes];
            for (sum, &word) in acc[..lanes].iter_mut().zip(row) {
                *sum += (c & word).count_ones();
            }
        }
    }

    /// Scalar batched popcount over a transposed block.
    #[inline]
    pub fn count_ones_many(block: &[u64], lanes: usize, acc: &mut [u32]) {
        acc[..lanes].fill(0);
        for row in block.chunks_exact(lanes) {
            for (sum, &word) in acc[..lanes].iter_mut().zip(row) {
                *sum += word.count_ones();
            }
        }
    }

    /// Scalar batched sparse membership count over a transposed block.
    #[inline]
    pub fn gather_count_many(tids: &[u32], block: &[u64], lanes: usize, acc: &mut [u32]) {
        acc[..lanes].fill(0);
        for &t in tids {
            let row = &block[(t as usize / 64) * lanes..];
            let shift = t % 64;
            for (sum, &word) in acc[..lanes].iter_mut().zip(row) {
                *sum += ((word >> shift) & 1) as u32;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// AVX2: 256-bit AND + Mula nibble-LUT popcount.
// ---------------------------------------------------------------------------

/// The AVX2 kernels (x86/x86_64 only; callers must verify AVX2 support).
#[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
pub mod avx2 {
    #[cfg(target_arch = "x86")]
    use std::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// Per-64-bit-lane popcount of a 256-bit vector: nibble lookup
    /// (`pshufb`) summed with `psadbw` (Muła's method).
    ///
    /// # Safety
    ///
    /// Requires AVX2.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn popcount_epi64(v: __m256i) -> __m256i {
        let lookup = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
            3, 3, 4,
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
        let counts = _mm256_add_epi8(
            _mm256_shuffle_epi8(lookup, lo),
            _mm256_shuffle_epi8(lookup, hi),
        );
        _mm256_sad_epu8(counts, _mm256_setzero_si256())
    }

    /// Horizontal sum of the four 64-bit lanes.
    ///
    /// # Safety
    ///
    /// Requires AVX2.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum_epi64(v: __m256i) -> u64 {
        let lo = _mm256_castsi256_si128(v);
        let hi = _mm256_extracti128_si256(v, 1);
        let sum = _mm_add_epi64(lo, hi);
        (_mm_cvtsi128_si64(sum) as u64)
            .wrapping_add(_mm_cvtsi128_si64(_mm_unpackhi_epi64(sum, sum)) as u64)
    }

    /// AVX2 `|a ∩ b|` over the common prefix.
    ///
    /// # Safety
    ///
    /// Requires AVX2 (runtime-detect before calling).
    #[target_feature(enable = "avx2")]
    pub unsafe fn and_count(a: &[u64], b: &[u64]) -> usize {
        let n = a.len().min(b.len());
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i + 4 <= n {
            let av = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
            let bv = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
            acc = _mm256_add_epi64(acc, popcount_epi64(_mm256_and_si256(av, bv)));
            i += 4;
        }
        let mut total = hsum_epi64(acc) as usize;
        while i < n {
            total += (a[i] & b[i]).count_ones() as usize;
            i += 1;
        }
        total
    }

    /// AVX2 `|a \ b|` over the common prefix.
    ///
    /// # Safety
    ///
    /// Requires AVX2 (runtime-detect before calling).
    #[target_feature(enable = "avx2")]
    pub unsafe fn andnot_count(a: &[u64], b: &[u64]) -> usize {
        let n = a.len().min(b.len());
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i + 4 <= n {
            let av = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
            let bv = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
            // andnot(x, y) = !x & y, so pass b first.
            acc = _mm256_add_epi64(acc, popcount_epi64(_mm256_andnot_si256(bv, av)));
            i += 4;
        }
        let mut total = hsum_epi64(acc) as usize;
        while i < n {
            total += (a[i] & !b[i]).count_ones() as usize;
            i += 1;
        }
        total
    }

    /// AVX2 popcount.
    ///
    /// # Safety
    ///
    /// Requires AVX2 (runtime-detect before calling).
    #[target_feature(enable = "avx2")]
    pub unsafe fn count_ones(a: &[u64]) -> usize {
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i + 4 <= a.len() {
            let av = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
            acc = _mm256_add_epi64(acc, popcount_epi64(av));
            i += 4;
        }
        let mut total = hsum_epi64(acc) as usize;
        while i < a.len() {
            total += a[i].count_ones() as usize;
            i += 1;
        }
        total
    }

    /// AVX2 batched `AND` + popcount over a transposed block: lane groups of
    /// four ride one 256-bit accumulator each while every cover word is
    /// broadcast once per group.
    ///
    /// # Safety
    ///
    /// Requires AVX2; block must be `cover.len() * lanes` words.
    #[target_feature(enable = "avx2")]
    pub unsafe fn and_count_many(cover: &[u64], block: &[u64], lanes: usize, acc: &mut [u32]) {
        let mut lane = 0;
        while lane + 4 <= lanes {
            let mut acc_v = _mm256_setzero_si256();
            for (w, &c) in cover.iter().enumerate() {
                let v = _mm256_loadu_si256(block.as_ptr().add(w * lanes + lane) as *const __m256i);
                let cv = _mm256_set1_epi64x(c as i64);
                acc_v = _mm256_add_epi64(acc_v, popcount_epi64(_mm256_and_si256(v, cv)));
            }
            let mut sums = [0u64; 4];
            _mm256_storeu_si256(sums.as_mut_ptr() as *mut __m256i, acc_v);
            for (dst, &s) in acc[lane..lane + 4].iter_mut().zip(sums.iter()) {
                *dst = s as u32;
            }
            lane += 4;
        }
        // Tail lanes (lanes % 4): scalar per lane.
        while lane < lanes {
            let mut sum = 0u32;
            for (w, &c) in cover.iter().enumerate() {
                sum += (c & block[w * lanes + lane]).count_ones();
            }
            acc[lane] = sum;
            lane += 1;
        }
    }

    /// AVX2 batched popcount over a transposed block.
    ///
    /// # Safety
    ///
    /// Requires AVX2; block length must be a multiple of `lanes`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn count_ones_many(block: &[u64], lanes: usize, acc: &mut [u32]) {
        let words_per_lane = block.len() / lanes;
        let mut lane = 0;
        while lane + 4 <= lanes {
            let mut acc_v = _mm256_setzero_si256();
            for w in 0..words_per_lane {
                let v = _mm256_loadu_si256(block.as_ptr().add(w * lanes + lane) as *const __m256i);
                acc_v = _mm256_add_epi64(acc_v, popcount_epi64(v));
            }
            let mut sums = [0u64; 4];
            _mm256_storeu_si256(sums.as_mut_ptr() as *mut __m256i, acc_v);
            for (dst, &s) in acc[lane..lane + 4].iter_mut().zip(sums.iter()) {
                *dst = s as u32;
            }
            lane += 4;
        }
        while lane < lanes {
            let mut sum = 0u32;
            for w in 0..words_per_lane {
                sum += block[w * lanes + lane].count_ones();
            }
            acc[lane] = sum;
            lane += 1;
        }
    }

    /// AVX2 batched sparse membership count: per sorted id, one unaligned
    /// load covers four lanes' words and a shared shift extracts the bit.
    ///
    /// # Safety
    ///
    /// Requires AVX2; every tid's lane-group words must be inside `block`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn gather_count_many(tids: &[u32], block: &[u64], lanes: usize, acc: &mut [u32]) {
        let ones = _mm256_set1_epi64x(1);
        let mut lane = 0;
        while lane + 4 <= lanes {
            let mut acc_v = _mm256_setzero_si256();
            for &t in tids {
                let base = (t as usize / 64) * lanes + lane;
                let v = _mm256_loadu_si256(block.as_ptr().add(base) as *const __m256i);
                let shift = _mm_cvtsi32_si128((t % 64) as i32);
                let bits = _mm256_and_si256(_mm256_srl_epi64(v, shift), ones);
                acc_v = _mm256_add_epi64(acc_v, bits);
            }
            let mut sums = [0u64; 4];
            _mm256_storeu_si256(sums.as_mut_ptr() as *mut __m256i, acc_v);
            for (dst, &s) in acc[lane..lane + 4].iter_mut().zip(sums.iter()) {
                *dst = s as u32;
            }
            lane += 4;
        }
        while lane < lanes {
            let mut sum = 0u32;
            for &t in tids {
                sum += ((block[(t as usize / 64) * lanes + lane] >> (t % 64)) & 1) as u32;
            }
            acc[lane] = sum;
            lane += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// NEON: 128-bit AND + vcnt byte popcount.
// ---------------------------------------------------------------------------

/// The NEON kernels (aarch64 only, where NEON is architecturally present).
#[cfg(target_arch = "aarch64")]
pub mod neon {
    use std::arch::aarch64::*;

    /// NEON `|a ∩ b|` over the common prefix.
    ///
    /// # Safety
    ///
    /// Requires NEON (guaranteed on aarch64).
    #[target_feature(enable = "neon")]
    pub unsafe fn and_count(a: &[u64], b: &[u64]) -> usize {
        let n = a.len().min(b.len());
        let mut total = 0usize;
        let mut i = 0;
        while i + 2 <= n {
            let av = vld1q_u64(a.as_ptr().add(i));
            let bv = vld1q_u64(b.as_ptr().add(i));
            let and = vandq_u64(av, bv);
            total += vaddlvq_u8(vcntq_u8(vreinterpretq_u8_u64(and))) as usize;
            i += 2;
        }
        while i < n {
            total += (a[i] & b[i]).count_ones() as usize;
            i += 1;
        }
        total
    }

    /// NEON `|a \ b|` over the common prefix.
    ///
    /// # Safety
    ///
    /// Requires NEON (guaranteed on aarch64).
    #[target_feature(enable = "neon")]
    pub unsafe fn andnot_count(a: &[u64], b: &[u64]) -> usize {
        let n = a.len().min(b.len());
        let mut total = 0usize;
        let mut i = 0;
        while i + 2 <= n {
            let av = vld1q_u64(a.as_ptr().add(i));
            let bv = vld1q_u64(b.as_ptr().add(i));
            let diff = vbicq_u64(av, bv); // a & !b
            total += vaddlvq_u8(vcntq_u8(vreinterpretq_u8_u64(diff))) as usize;
            i += 2;
        }
        while i < n {
            total += (a[i] & !b[i]).count_ones() as usize;
            i += 1;
        }
        total
    }

    /// NEON popcount.
    ///
    /// # Safety
    ///
    /// Requires NEON (guaranteed on aarch64).
    #[target_feature(enable = "neon")]
    pub unsafe fn count_ones(a: &[u64]) -> usize {
        let mut total = 0usize;
        let mut i = 0;
        while i + 2 <= a.len() {
            let av = vld1q_u64(a.as_ptr().add(i));
            total += vaddlvq_u8(vcntq_u8(vreinterpretq_u8_u64(av))) as usize;
            i += 2;
        }
        while i < a.len() {
            total += a[i].count_ones() as usize;
            i += 1;
        }
        total
    }

    /// NEON batched `AND` + popcount over a transposed block (lane pairs).
    ///
    /// # Safety
    ///
    /// Requires NEON; block must be `cover.len() * lanes` words.
    #[target_feature(enable = "neon")]
    pub unsafe fn and_count_many(cover: &[u64], block: &[u64], lanes: usize, acc: &mut [u32]) {
        let mut lane = 0;
        while lane + 2 <= lanes {
            let mut sums = vdupq_n_u64(0);
            for (w, &c) in cover.iter().enumerate() {
                let v = vld1q_u64(block.as_ptr().add(w * lanes + lane));
                let and = vandq_u64(v, vdupq_n_u64(c));
                let cnt = vcntq_u8(vreinterpretq_u8_u64(and));
                sums = vaddq_u64(sums, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(cnt))));
            }
            acc[lane] = vgetq_lane_u64(sums, 0) as u32;
            acc[lane + 1] = vgetq_lane_u64(sums, 1) as u32;
            lane += 2;
        }
        while lane < lanes {
            let mut sum = 0u32;
            for (w, &c) in cover.iter().enumerate() {
                sum += (c & block[w * lanes + lane]).count_ones();
            }
            acc[lane] = sum;
            lane += 1;
        }
    }

    /// NEON batched popcount over a transposed block.
    ///
    /// # Safety
    ///
    /// Requires NEON; block length must be a multiple of `lanes`.
    #[target_feature(enable = "neon")]
    pub unsafe fn count_ones_many(block: &[u64], lanes: usize, acc: &mut [u32]) {
        let words_per_lane = block.len() / lanes;
        let mut lane = 0;
        while lane + 2 <= lanes {
            let mut sums = vdupq_n_u64(0);
            for w in 0..words_per_lane {
                let v = vld1q_u64(block.as_ptr().add(w * lanes + lane));
                let cnt = vcntq_u8(vreinterpretq_u8_u64(v));
                sums = vaddq_u64(sums, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(cnt))));
            }
            acc[lane] = vgetq_lane_u64(sums, 0) as u32;
            acc[lane + 1] = vgetq_lane_u64(sums, 1) as u32;
            lane += 2;
        }
        while lane < lanes {
            let mut sum = 0u32;
            for w in 0..words_per_lane {
                sum += block[w * lanes + lane].count_ones();
            }
            acc[lane] = sum;
            lane += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(seed: u64, n: usize) -> Vec<u64> {
        // Cheap deterministic word stream (splitmix64).
        let mut x = seed;
        (0..n)
            .map(|_| {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            })
            .collect()
    }

    fn reference_and_count(a: &[u64], b: &[u64]) -> usize {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| (x & y).count_ones() as usize)
            .sum()
    }

    #[test]
    fn resolution_rule() {
        // Explicit scalar always wins.
        assert_eq!(
            resolve(Some("scalar"), Some(KernelKind::Avx2)),
            KernelKind::Scalar
        );
        // simd/auto take the detected SIMD kind…
        assert_eq!(
            resolve(Some("simd"), Some(KernelKind::Avx2)),
            KernelKind::Avx2
        );
        assert_eq!(
            resolve(Some("auto"), Some(KernelKind::Neon)),
            KernelKind::Neon
        );
        assert_eq!(resolve(None, Some(KernelKind::Avx2)), KernelKind::Avx2);
        // …and fall back to scalar when the machine has none: the runtime
        // feature-detection fallback path.
        assert_eq!(resolve(Some("simd"), None), KernelKind::Scalar);
        assert_eq!(resolve(None, None), KernelKind::Scalar);
    }

    #[test]
    fn force_rejects_unsupported_kinds() {
        let unsupported = match simd_kind() {
            Some(KernelKind::Avx2) | None => KernelKind::Neon,
            _ => KernelKind::Avx2,
        };
        force(Some(unsupported));
        assert_eq!(kind(), KernelKind::Scalar, "unsupported force degrades");
        force(None);
    }

    #[test]
    fn scalar_kernels_match_reference_with_tails() {
        for n in [0usize, 1, 3, 4, 5, 7, 8, 17, 63, 100] {
            let a = words(1, n);
            let b = words(2, n);
            assert_eq!(scalar::and_count(&a, &b), reference_and_count(&a, &b));
            assert_eq!(
                scalar::count_ones(&a),
                a.iter().map(|w| w.count_ones() as usize).sum::<usize>()
            );
            assert_eq!(
                scalar::andnot_count(&a, &b),
                a.iter()
                    .zip(&b)
                    .map(|(&x, &y)| (x & !y).count_ones() as usize)
                    .sum::<usize>()
            );
        }
    }

    #[test]
    fn simd_kernels_match_scalar_when_available() {
        #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
        if simd_kind() == Some(KernelKind::Avx2) {
            for n in [0usize, 1, 3, 4, 5, 7, 8, 17, 63, 100, 257] {
                let a = words(3, n);
                let b = words(4, n);
                // SAFETY: AVX2 support checked above.
                unsafe {
                    assert_eq!(avx2::and_count(&a, &b), scalar::and_count(&a, &b), "n={n}");
                    assert_eq!(avx2::count_ones(&a), scalar::count_ones(&a), "n={n}");
                    assert_eq!(
                        avx2::andnot_count(&a, &b),
                        scalar::andnot_count(&a, &b),
                        "n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_kernels_match_per_lane_counts() {
        for lanes in [1usize, 2, 3, 4, 5, 7, 8, 11] {
            for words_per_lane in [1usize, 2, 5, 16, 33] {
                let cover = words(9, words_per_lane);
                let block = words(10, words_per_lane * lanes);
                let mut acc = vec![0u32; lanes];
                and_count_many(&cover, &block, lanes, &mut acc);
                for lane in 0..lanes {
                    let lane_words: Vec<u64> = (0..words_per_lane)
                        .map(|w| block[w * lanes + lane])
                        .collect();
                    assert_eq!(
                        acc[lane] as usize,
                        reference_and_count(&cover, &lane_words),
                        "lanes={lanes} wpl={words_per_lane} lane={lane}"
                    );
                }
                count_ones_many(&block, lanes, &mut acc);
                for lane in 0..lanes {
                    let expect: usize = (0..words_per_lane)
                        .map(|w| block[w * lanes + lane].count_ones() as usize)
                        .sum();
                    assert_eq!(acc[lane] as usize, expect);
                }
            }
        }
    }

    #[test]
    fn gather_matches_bit_tests() {
        let lanes = 8;
        let words_per_lane = 6;
        let block = words(11, words_per_lane * lanes);
        let tids: Vec<u32> = vec![0, 1, 5, 63, 64, 100, 200, 383];
        let mut acc = vec![0u32; lanes];
        gather_count_many(&tids, &block, lanes, &mut acc);
        for lane in 0..lanes {
            let expect = tids
                .iter()
                .filter(|&&t| (block[(t as usize / 64) * lanes + lane] >> (t % 64)) & 1 == 1)
                .count();
            assert_eq!(acc[lane] as usize, expect, "lane={lane}");
        }
    }

    #[test]
    fn sweep_counters_accumulate() {
        let before = counters();
        note_batched_sweeps(3);
        note_per_perm_sweeps(2);
        let after = counters();
        assert!(after.batched_sweeps >= before.batched_sweeps + 3);
        assert!(after.per_perm_sweeps >= before.per_perm_sweeps + 2);
        assert!(!after.kernel.is_empty());
    }
}
