//! Dataset substrate for class association rule mining.
//!
//! The paper mines *class association rules* from attribute-valued data with
//! class labels (§2.1): each record is described by `m` categorical attributes
//! plus a class label, every attribute/value pair is an *item*, and a
//! *pattern* is a set of items.  This crate provides:
//!
//! * the schema / item / record / dataset types ([`schema`], [`item`],
//!   [`record`], [`dataset`]),
//! * the vertical representation used by the miners and by the permutation
//!   engine — tid-sets and the Diffsets encoding of Zaki & Gouda ([`vertical`]),
//! * supervised (Fayyad–Irani MDL) and unsupervised discretization for
//!   continuous attributes ([`discretize`]) — the paper used MLC++ for this,
//! * a small CSV loader so real datasets can be used when available
//!   ([`loader`]),
//! * deterministic emulators of the four UCI datasets used in the paper's
//!   evaluation ([`uci`]) — adult, german, hypo and mushroom — which stand in
//!   for the real files in this reproduction (see DESIGN.md for the
//!   substitution rationale).
//!
//! # Example: load a labelled CSV
//!
//! ```
//! use sigrule_data::loader::{load_csv_str, LoadOptions};
//!
//! let csv = "\
//! age,color,outcome
//! 23,red,yes
//! 31,blue,no
//! 45,red,yes
//! 52,blue,no
//! ";
//! let dataset = load_csv_str(csv, &LoadOptions::default()).unwrap();
//! assert_eq!(dataset.n_records(), 4);
//! assert_eq!(dataset.schema().n_attributes(), 2);       // age, color
//! assert_eq!(dataset.schema().classes(), &["yes".to_string(), "no".to_string()]);
//! // the numeric column was discretized, the categorical one interned
//! assert_eq!(dataset.schema().attributes()[1].name, "color");
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod dataset;
pub mod discretize;
pub mod error;
pub mod item;
pub mod loader;
pub mod record;
pub mod schema;
pub mod uci;
pub mod vertical;

pub use dataset::{ClassCounts, Dataset};
pub use error::DataError;
pub use item::{ClassId, Item, ItemId, Pattern};
pub use record::Record;
pub use schema::{Attribute, Schema};
pub use vertical::{Bitmap, ClassBitmaps, Cover, TidSet, VerticalDataset};
