//! Dataset substrate for class association rule mining.
//!
//! The paper mines *class association rules* over generic itemsets (§2.1):
//! every record is a set of items plus a class label, and a *pattern* is a
//! set of items.  This crate owns the [`ItemSpace`] — the single internal
//! universe of item ids every other crate speaks — and the two record models
//! that compile into it: attribute-valued rows (one `attribute=value` item
//! per column, via a [`Schema`]) and market-basket transactions (free-form
//! token sets).  It provides:
//!
//! * the item universe with per-item provenance ([`itemspace`]),
//! * the schema / item / record / dataset types ([`schema`], [`item`],
//!   [`record`], [`dataset`]),
//! * the vertical representation used by the miners and by the permutation
//!   engine — tid-sets and the Diffsets encoding of Zaki & Gouda ([`vertical`]),
//! * supervised (Fayyad–Irani MDL) and unsupervised discretization for
//!   continuous attributes ([`discretize`]) — the paper used MLC++ for this,
//! * loaders for labelled CSV/TSV rows *and* basket transaction files
//!   ([`loader`]),
//! * deterministic emulators of the four UCI datasets used in the paper's
//!   evaluation ([`uci`]) — adult, german, hypo and mushroom — which stand in
//!   for the real files in this reproduction (see DESIGN.md for the
//!   substitution rationale).
//!
//! # Example: load a labelled CSV
//!
//! ```
//! use sigrule_data::loader::{load_csv_str, LoadOptions};
//!
//! let csv = "\
//! age,color,outcome
//! 23,red,yes
//! 31,blue,no
//! 45,red,yes
//! 52,blue,no
//! ";
//! let dataset = load_csv_str(csv, &LoadOptions::default()).unwrap();
//! assert_eq!(dataset.n_records(), 4);
//! assert_eq!(dataset.schema().unwrap().n_attributes(), 2);       // age, color
//! assert_eq!(dataset.item_space().classes(), &["yes".to_string(), "no".to_string()]);
//! // the numeric column was discretized, the categorical one interned
//! assert_eq!(dataset.schema().unwrap().attributes()[1].name, "color");
//! ```
//!
//! # Example: load market-basket transactions
//!
//! ```
//! use sigrule_data::loader::{load_baskets_str, BasketOptions};
//!
//! let baskets = "\
//! milk bread label:weekday
//! milk beer label:weekend
//! bread eggs milk label:weekday
//! ";
//! let load = load_baskets_str(baskets, &BasketOptions::default()).unwrap();
//! let dataset = &load.dataset;
//! assert_eq!(dataset.n_records(), 3);
//! assert!(dataset.item_space().is_basket());
//! assert_eq!(dataset.item_space().describe_item(0), "milk");
//! assert_eq!(dataset.item_support(0), 3);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod dataset;
pub mod discretize;
pub mod error;
pub mod item;
pub mod itemspace;
pub mod kernel;
pub mod loader;
pub mod record;
pub mod schema;
pub mod shared;
pub mod uci;
pub mod vertical;

pub use dataset::{ClassCounts, Dataset};
pub use error::DataError;
pub use item::{ClassId, Item, ItemId, Pattern};
pub use itemspace::{ItemDef, ItemProvenance, ItemSpace};
pub use kernel::{KernelCounters, KernelKind};
pub use loader::InputFormat;
pub use record::Record;
pub use schema::{Attribute, Schema};
pub use shared::SharedDataset;
pub use vertical::{
    Bitmap, ClassBitmaps, ClassLaneBlocks, Cover, LaneBlock, TidSet, VerticalDataset,
};
