//! Items, class labels and patterns (§2.1 of the paper).
//!
//! An *item* is an attribute/value pair `A = v`.  For efficiency every item is
//! mapped to a dense integer [`ItemId`] by the [`Schema`](crate::schema::Schema);
//! records and patterns store item ids, and the schema can always translate an
//! id back to its attribute and value names for display.

use serde::{Deserialize, Serialize};

/// Dense integer identifier of an item (an attribute/value pair).
///
/// Ids are assigned contiguously per schema: attribute 0's values come first,
/// then attribute 1's, and so on.  This makes `ItemId → attribute` lookups a
/// binary search over offsets and keeps vertical layouts compact.
pub type ItemId = u32;

/// Dense integer identifier of a class label.
pub type ClassId = u32;

/// An attribute/value pair in symbolic (pre-schema) form.
///
/// Used by loaders and generators before the schema interns the pair into an
/// [`ItemId`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Item {
    /// Index of the attribute in the schema.
    pub attribute: usize,
    /// Index of the value within the attribute's domain.
    pub value: usize,
}

impl Item {
    /// Creates a new item.
    pub fn new(attribute: usize, value: usize) -> Self {
        Item { attribute, value }
    }
}

/// A pattern: a set of items, stored as a sorted, de-duplicated vector of
/// [`ItemId`]s.
///
/// The sorted representation makes sub-pattern checks, joins and hashing
/// cheap, and gives every pattern a canonical form.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Pattern {
    items: Vec<ItemId>,
}

impl Pattern {
    /// The empty pattern (length 0); contained in every record.
    pub fn empty() -> Self {
        Pattern { items: Vec::new() }
    }

    /// Builds a pattern from any iterator of item ids; duplicates are removed
    /// and the result is sorted into canonical form.
    pub fn from_items(items: impl IntoIterator<Item = ItemId>) -> Self {
        let mut items: Vec<ItemId> = items.into_iter().collect();
        items.sort_unstable();
        items.dedup();
        Pattern { items }
    }

    /// A single-item pattern.
    pub fn singleton(item: ItemId) -> Self {
        Pattern { items: vec![item] }
    }

    /// Number of items in the pattern (its *length*, §2.1 Definition 1).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True for the empty pattern.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The item ids, sorted ascending.
    pub fn items(&self) -> &[ItemId] {
        &self.items
    }

    /// True if `self` is a sub-pattern of `other` (`self ⊆ other`).
    pub fn is_subset_of(&self, other: &Pattern) -> bool {
        is_sorted_subset(&self.items, &other.items)
    }

    /// True if `self` is a super-pattern of `other` (`self ⊇ other`).
    pub fn is_superset_of(&self, other: &Pattern) -> bool {
        other.is_subset_of(self)
    }

    /// True if the pattern contains the given item.
    pub fn contains(&self, item: ItemId) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// Returns the pattern extended with one more item (no-op if the item is
    /// already present).
    pub fn with_item(&self, item: ItemId) -> Pattern {
        if self.contains(item) {
            return self.clone();
        }
        let mut items = self.items.clone();
        let pos = items.partition_point(|&i| i < item);
        items.insert(pos, item);
        Pattern { items }
    }

    /// Union of two patterns.
    pub fn union(&self, other: &Pattern) -> Pattern {
        let mut items = Vec::with_capacity(self.items.len() + other.items.len());
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.items.len() && b < other.items.len() {
            match self.items[a].cmp(&other.items[b]) {
                std::cmp::Ordering::Less => {
                    items.push(self.items[a]);
                    a += 1;
                }
                std::cmp::Ordering::Greater => {
                    items.push(other.items[b]);
                    b += 1;
                }
                std::cmp::Ordering::Equal => {
                    items.push(self.items[a]);
                    a += 1;
                    b += 1;
                }
            }
        }
        items.extend_from_slice(&self.items[a..]);
        items.extend_from_slice(&other.items[b..]);
        Pattern { items }
    }

    /// Intersection of two patterns.
    pub fn intersection(&self, other: &Pattern) -> Pattern {
        let mut items = Vec::new();
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.items.len() && b < other.items.len() {
            match self.items[a].cmp(&other.items[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    items.push(self.items[a]);
                    a += 1;
                    b += 1;
                }
            }
        }
        Pattern { items }
    }

    /// Consumes the pattern and returns the underlying sorted vector.
    pub fn into_items(self) -> Vec<ItemId> {
        self.items
    }
}

impl From<Vec<ItemId>> for Pattern {
    fn from(items: Vec<ItemId>) -> Self {
        Pattern::from_items(items)
    }
}

impl FromIterator<ItemId> for Pattern {
    fn from_iter<T: IntoIterator<Item = ItemId>>(iter: T) -> Self {
        Pattern::from_items(iter)
    }
}

impl std::fmt::Display for Pattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, "}}")
    }
}

/// True when the sorted slice `small` is a subset of the sorted slice `big`.
fn is_sorted_subset(small: &[ItemId], big: &[ItemId]) -> bool {
    if small.len() > big.len() {
        return false;
    }
    let mut b = 0usize;
    for &x in small {
        // advance in `big` until we find x or pass it
        while b < big.len() && big[b] < x {
            b += 1;
        }
        if b >= big.len() || big[b] != x {
            return false;
        }
        b += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_items_sorts_and_dedups() {
        let p = Pattern::from_items([5, 1, 3, 1, 5]);
        assert_eq!(p.items(), &[1, 3, 5]);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn empty_pattern() {
        let e = Pattern::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let p = Pattern::from_items([1, 2]);
        assert!(e.is_subset_of(&p));
        assert!(!p.is_subset_of(&e));
    }

    #[test]
    fn subset_and_superset() {
        let a = Pattern::from_items([1, 3, 5]);
        let b = Pattern::from_items([1, 2, 3, 4, 5]);
        assert!(a.is_subset_of(&b));
        assert!(b.is_superset_of(&a));
        assert!(!b.is_subset_of(&a));
        assert!(a.is_subset_of(&a));
        let c = Pattern::from_items([1, 6]);
        assert!(!c.is_subset_of(&b));
    }

    #[test]
    fn contains_and_with_item() {
        let p = Pattern::from_items([2, 4]);
        assert!(p.contains(2));
        assert!(!p.contains(3));
        let q = p.with_item(3);
        assert_eq!(q.items(), &[2, 3, 4]);
        // inserting an existing item is a no-op
        let r = q.with_item(3);
        assert_eq!(r.items(), &[2, 3, 4]);
        // the original is untouched
        assert_eq!(p.items(), &[2, 4]);
    }

    #[test]
    fn union_and_intersection() {
        let a = Pattern::from_items([1, 3, 5]);
        let b = Pattern::from_items([3, 4, 5, 7]);
        assert_eq!(a.union(&b).items(), &[1, 3, 4, 5, 7]);
        assert_eq!(a.intersection(&b).items(), &[3, 5]);
        assert_eq!(a.union(&Pattern::empty()).items(), a.items());
        assert!(a.intersection(&Pattern::empty()).is_empty());
    }

    #[test]
    fn display_format() {
        let p = Pattern::from_items([2, 7]);
        assert_eq!(p.to_string(), "{2, 7}");
        assert_eq!(Pattern::empty().to_string(), "{}");
    }

    #[test]
    fn from_iterator_and_from_vec() {
        let p: Pattern = vec![9u32, 1, 9].into();
        assert_eq!(p.items(), &[1, 9]);
        let q: Pattern = [4u32, 2].into_iter().collect();
        assert_eq!(q.items(), &[2, 4]);
    }

    #[test]
    fn singleton() {
        let p = Pattern::singleton(7);
        assert_eq!(p.items(), &[7]);
        assert_eq!(p.len(), 1);
    }
}
