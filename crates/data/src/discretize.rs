//! Discretization of continuous attributes.
//!
//! The paper discretizes the continuous attributes of the UCI datasets with
//! MLC++'s supervised discretizer before mining.  We provide the same
//! algorithm family — Fayyad & Irani's entropy-based method with the MDL
//! stopping criterion — plus two unsupervised baselines (equal-width and
//! equal-frequency binning) used by the loader when no class label is
//! available.

use crate::item::ClassId;

/// Strategy used to discretize a continuous column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiscretizeMethod {
    /// Fayyad–Irani recursive entropy minimisation with the MDL stopping rule
    /// (supervised; needs class labels).
    EntropyMdl,
    /// Equal-width binning with the given number of bins.
    EqualWidth(usize),
    /// Equal-frequency binning with the given number of bins.
    EqualFrequency(usize),
}

/// A fitted discretizer for one continuous column: a sorted list of cut
/// points.  A value `v` maps to bin `i` where `i` is the number of cut points
/// `≤ v`.
#[derive(Debug, Clone, PartialEq)]
pub struct Discretizer {
    cuts: Vec<f64>,
}

impl Discretizer {
    /// Fits a discretizer on a column of values (and labels, for the
    /// supervised method).
    ///
    /// `labels` may be empty for the unsupervised methods; for
    /// [`DiscretizeMethod::EntropyMdl`] it must have the same length as
    /// `values`.
    pub fn fit(values: &[f64], labels: &[ClassId], method: DiscretizeMethod) -> Self {
        let cuts = match method {
            DiscretizeMethod::EntropyMdl => {
                assert_eq!(
                    values.len(),
                    labels.len(),
                    "supervised discretization needs one label per value"
                );
                fit_entropy_mdl(values, labels)
            }
            DiscretizeMethod::EqualWidth(bins) => fit_equal_width(values, bins),
            DiscretizeMethod::EqualFrequency(bins) => fit_equal_frequency(values, bins),
        };
        Discretizer { cuts }
    }

    /// The fitted cut points, sorted ascending.
    pub fn cut_points(&self) -> &[f64] {
        &self.cuts
    }

    /// Number of bins produced (`cuts + 1`).
    pub fn n_bins(&self) -> usize {
        self.cuts.len() + 1
    }

    /// Maps a value to its bin index.
    pub fn bin(&self, value: f64) -> usize {
        self.cuts.partition_point(|&c| c <= value)
    }

    /// Maps a whole column.
    pub fn transform(&self, values: &[f64]) -> Vec<usize> {
        values.iter().map(|&v| self.bin(v)).collect()
    }

    /// Human-readable bin labels such as `(-inf, 3.5]`, `(3.5, 7.2]`,
    /// `(7.2, +inf)`.
    pub fn bin_labels(&self) -> Vec<String> {
        if self.cuts.is_empty() {
            return vec!["(-inf, +inf)".to_string()];
        }
        let mut labels = Vec::with_capacity(self.n_bins());
        labels.push(format!("(-inf, {:.4}]", self.cuts[0]));
        for w in self.cuts.windows(2) {
            labels.push(format!("({:.4}, {:.4}]", w[0], w[1]));
        }
        labels.push(format!("({:.4}, +inf)", self.cuts[self.cuts.len() - 1]));
        labels
    }
}

fn fit_equal_width(values: &[f64], bins: usize) -> Vec<f64> {
    if values.is_empty() || bins <= 1 {
        return Vec::new();
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !min.is_finite() || !max.is_finite() || min == max {
        return Vec::new();
    }
    let width = (max - min) / bins as f64;
    (1..bins).map(|i| min + width * i as f64).collect()
}

fn fit_equal_frequency(values: &[f64], bins: usize) -> Vec<f64> {
    if values.is_empty() || bins <= 1 {
        return Vec::new();
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let n = sorted.len();
    let mut cuts = Vec::new();
    for i in 1..bins {
        let idx = (i * n / bins).min(n - 1);
        let cut = sorted[idx];
        if cuts.last().is_none_or(|&last| cut > last) && cut > sorted[0] {
            cuts.push(cut);
        }
    }
    cuts
}

/// Entropy (natural log) of a class-count histogram.
fn entropy(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total;
            -p * p.ln()
        })
        .sum()
}

/// Number of distinct classes present in a histogram.
fn n_distinct(counts: &[usize]) -> usize {
    counts.iter().filter(|&&c| c > 0).count()
}

/// Fayyad–Irani recursive binary splitting with the MDL stopping criterion.
fn fit_entropy_mdl(values: &[f64], labels: &[ClassId]) -> Vec<f64> {
    if values.is_empty() {
        return Vec::new();
    }
    let n_classes = labels.iter().map(|&c| c as usize).max().unwrap_or(0) + 1;
    let mut pairs: Vec<(f64, ClassId)> =
        values.iter().copied().zip(labels.iter().copied()).collect();
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN"));
    let mut cuts = Vec::new();
    split_recursive(&pairs, n_classes, &mut cuts);
    cuts.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    cuts.dedup();
    cuts
}

fn class_histogram(pairs: &[(f64, ClassId)], n_classes: usize) -> Vec<usize> {
    let mut h = vec![0usize; n_classes];
    for &(_, c) in pairs {
        h[c as usize] += 1;
    }
    h
}

fn split_recursive(pairs: &[(f64, ClassId)], n_classes: usize, cuts: &mut Vec<f64>) {
    let n = pairs.len();
    if n < 4 {
        return;
    }
    let total_hist = class_histogram(pairs, n_classes);
    let total_entropy = entropy(&total_hist);
    if n_distinct(&total_hist) < 2 {
        return;
    }

    // Evaluate every boundary between distinct values, tracking the split
    // that minimises the weighted child entropy.
    let mut best: Option<(usize, f64, f64)> = None; // (split index, cut value, weighted entropy)
    let mut left_hist = vec![0usize; n_classes];
    for i in 1..n {
        left_hist[pairs[i - 1].1 as usize] += 1;
        if pairs[i].0 == pairs[i - 1].0 {
            continue; // can only cut between distinct values
        }
        let mut right_hist = total_hist.clone();
        for (r, l) in right_hist.iter_mut().zip(left_hist.iter()) {
            *r -= l;
        }
        let w_left = i as f64 / n as f64;
        let w_right = 1.0 - w_left;
        let weighted = w_left * entropy(&left_hist) + w_right * entropy(&right_hist);
        if best.is_none_or(|(_, _, e)| weighted < e) {
            let cut = (pairs[i - 1].0 + pairs[i].0) / 2.0;
            best = Some((i, cut, weighted));
        }
    }
    let Some((split_idx, cut, weighted_entropy)) = best else {
        return;
    };

    // MDL acceptance criterion (Fayyad & Irani 1993), with all entropies
    // expressed in bits:
    //   accept iff Gain > log2(N−1)/N + Δ/N,
    //   Δ = log2(3^k − 2) − [k·Ent(S) − k1·Ent(S1) − k2·Ent(S2)].
    const LN_2: f64 = std::f64::consts::LN_2;
    let left = &pairs[..split_idx];
    let right = &pairs[split_idx..];
    let left_hist = class_histogram(left, n_classes);
    let right_hist = class_histogram(right, n_classes);
    let ent_s = total_entropy / LN_2;
    let ent_s1 = entropy(&left_hist) / LN_2;
    let ent_s2 = entropy(&right_hist) / LN_2;
    let gain_bits = ent_s - weighted_entropy / LN_2;
    let k = n_distinct(&total_hist) as f64;
    let k1 = n_distinct(&left_hist) as f64;
    let k2 = n_distinct(&right_hist) as f64;
    let delta = (3f64.powf(k) - 2.0).log2() - (k * ent_s - k1 * ent_s1 - k2 * ent_s2);
    let nf = n as f64;
    let threshold = (nf - 1.0).log2() / nf + delta / nf;
    if gain_bits <= threshold {
        return;
    }

    cuts.push(cut);
    split_recursive(left, n_classes, cuts);
    split_recursive(right, n_classes, cuts);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_width_cuts() {
        let values: Vec<f64> = (0..=10).map(|i| i as f64).collect();
        let d = Discretizer::fit(&values, &[], DiscretizeMethod::EqualWidth(5));
        assert_eq!(d.n_bins(), 5);
        assert_eq!(d.cut_points(), &[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(d.bin(1.0), 0);
        assert_eq!(d.bin(2.0), 1); // boundary goes to the upper bin (cut <= v)
        assert_eq!(d.bin(9.9), 4);
        assert_eq!(d.bin(100.0), 4);
        assert_eq!(d.bin(-5.0), 0);
    }

    #[test]
    fn equal_width_degenerate_cases() {
        // constant column
        let d = Discretizer::fit(&[3.0, 3.0, 3.0], &[], DiscretizeMethod::EqualWidth(4));
        assert_eq!(d.n_bins(), 1);
        // empty column
        let d = Discretizer::fit(&[], &[], DiscretizeMethod::EqualWidth(4));
        assert_eq!(d.n_bins(), 1);
        // single bin requested
        let d = Discretizer::fit(&[1.0, 2.0], &[], DiscretizeMethod::EqualWidth(1));
        assert_eq!(d.n_bins(), 1);
    }

    #[test]
    fn equal_frequency_balances_bins() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let d = Discretizer::fit(&values, &[], DiscretizeMethod::EqualFrequency(4));
        assert_eq!(d.n_bins(), 4);
        let binned = d.transform(&values);
        let mut counts = vec![0usize; 4];
        for b in binned {
            counts[b] += 1;
        }
        for &c in &counts {
            assert!(
                (20..=30).contains(&c),
                "bins should be roughly balanced: {counts:?}"
            );
        }
    }

    #[test]
    fn equal_frequency_with_heavy_ties() {
        // Most values identical: cannot create more bins than distinct values.
        let values = vec![1.0; 50]
            .into_iter()
            .chain((0..10).map(|i| 2.0 + i as f64))
            .collect::<Vec<_>>();
        let d = Discretizer::fit(&values, &[], DiscretizeMethod::EqualFrequency(5));
        assert!(d.n_bins() >= 1);
        assert!(d.n_bins() <= 5);
    }

    #[test]
    fn entropy_mdl_finds_obvious_boundary() {
        // Class 0 below 50, class 1 above 50: one clean cut expected.
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let labels: Vec<ClassId> = (0..100).map(|i| if i < 50 { 0 } else { 1 }).collect();
        let d = Discretizer::fit(&values, &labels, DiscretizeMethod::EntropyMdl);
        assert!(
            !d.cut_points().is_empty(),
            "a perfectly separable column must be cut"
        );
        // The first cut should sit near the class boundary.
        let near = d.cut_points().iter().any(|&c| (c - 49.5).abs() < 2.0);
        assert!(near, "cuts {:?} should include ~49.5", d.cut_points());
        assert_eq!(d.bin(10.0), 0);
        assert!(d.bin(80.0) >= 1);
    }

    #[test]
    fn entropy_mdl_refuses_to_cut_noise() {
        // Labels independent of the value: MDL should reject every split.
        let values: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let labels: Vec<ClassId> = (0..200).map(|i| (i % 2) as ClassId).collect();
        let d = Discretizer::fit(&values, &labels, DiscretizeMethod::EntropyMdl);
        assert!(
            d.cut_points().len() <= 2,
            "uninformative column should get few or no cuts, got {:?}",
            d.cut_points()
        );
    }

    #[test]
    fn entropy_mdl_two_boundaries() {
        // Three bands: class 0, class 1, class 0.
        let values: Vec<f64> = (0..150).map(|i| i as f64).collect();
        let labels: Vec<ClassId> = (0..150)
            .map(|i| if !(50..100).contains(&i) { 0 } else { 1 })
            .collect();
        let d = Discretizer::fit(&values, &labels, DiscretizeMethod::EntropyMdl);
        assert!(
            d.cut_points().len() >= 2,
            "expected two cuts, got {:?}",
            d.cut_points()
        );
    }

    #[test]
    fn bin_labels_cover_all_bins() {
        let d = Discretizer::fit(
            &[0.0, 1.0, 2.0, 3.0, 4.0],
            &[],
            DiscretizeMethod::EqualWidth(3),
        );
        let labels = d.bin_labels();
        assert_eq!(labels.len(), d.n_bins());
        assert!(labels[0].starts_with("(-inf"));
        assert!(labels.last().unwrap().ends_with("+inf)"));

        let constant = Discretizer::fit(&[1.0, 1.0], &[], DiscretizeMethod::EqualWidth(3));
        assert_eq!(constant.bin_labels(), vec!["(-inf, +inf)".to_string()]);
    }

    #[test]
    fn transform_maps_whole_column() {
        let d = Discretizer::fit(&[0.0, 10.0], &[], DiscretizeMethod::EqualWidth(2));
        assert_eq!(d.transform(&[1.0, 6.0, 11.0]), vec![0, 1, 1]);
    }
}
