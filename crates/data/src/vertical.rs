//! Vertical dataset layout: tid-sets, Diffsets (§4.2.2 of the paper) and
//! packed bitsets.
//!
//! The permutation approach mines frequent patterns only once, stores the
//! *record id list* (tid-set) of every frequent pattern, and recomputes rule
//! supports on each permutation from the tid-sets and the shuffled class
//! labels.  Tid-sets can be long, so the paper adopts the Diffsets technique
//! of Zaki & Gouda: when a child pattern's support is more than half of its
//! parent's, store only the *difference* between the parent's and the child's
//! tid-sets.
//!
//! On top of the id-list representations this module provides a packed
//! [`Bitmap`] (one bit per record, 64 records per machine word): counting how
//! many records of a cover carry a class label then becomes a word-wise
//! `AND` + `count_ones` sweep instead of one label-array load per stored id.
//! For dense covers (more than one stored id per 64 records) the bitmap sweep
//! touches far less memory and vectorises, which is what the parallel
//! permutation engine exploits.
//!
//! * [`TidSet`] — a sorted list of record ids with intersection/difference.
//! * [`Cover`] — either a full tid-set or a diffset relative to a parent.
//! * [`Bitmap`] — packed record-id set with popcount counting.
//! * [`ClassBitmaps`] — one bitmap per class built from a label vector,
//!   rebuilt cheaply on every permutation.
//! * [`LaneBlock`] — a *transposed* block of equally sized bitmaps (one per
//!   permutation lane) the batched permutation engine sweeps in one pass.
//! * [`ClassLaneBlocks`] — one lane block per class, filled from a whole
//!   chunk of shuffled label vectors at once.
//! * [`VerticalDataset`] — per-item tid-sets plus the class label vector.
//!
//! All popcount sweeps route through [`crate::kernel`], which dispatches to
//! explicit SIMD implementations at runtime.

use crate::dataset::Dataset;
use crate::item::{ClassId, ItemId};
use crate::kernel;
use serde::{Deserialize, Serialize};

/// A sorted set of record ids (tids).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TidSet {
    tids: Vec<u32>,
}

impl TidSet {
    /// Creates a tid-set from any iterator of record ids; sorts and
    /// de-duplicates.
    pub fn from_tids(tids: impl IntoIterator<Item = u32>) -> Self {
        let mut tids: Vec<u32> = tids.into_iter().collect();
        tids.sort_unstable();
        tids.dedup();
        TidSet { tids }
    }

    /// Creates an empty tid-set.
    pub fn empty() -> Self {
        TidSet { tids: Vec::new() }
    }

    /// The full tid-set `{0, 1, ..., n-1}`.
    pub fn full(n: usize) -> Self {
        TidSet {
            tids: (0..n as u32).collect(),
        }
    }

    /// The record ids, sorted ascending.
    pub fn tids(&self) -> &[u32] {
        &self.tids
    }

    /// Cardinality of the set (the support of the pattern it covers).
    pub fn len(&self) -> usize {
        self.tids.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.tids.is_empty()
    }

    /// True when the set contains the record id.
    pub fn contains(&self, tid: u32) -> bool {
        self.tids.binary_search(&tid).is_ok()
    }

    /// Set intersection `self ∩ other` (both sorted, linear merge).
    pub fn intersect(&self, other: &TidSet) -> TidSet {
        let mut out = Vec::with_capacity(self.len().min(other.len()));
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.tids.len() && b < other.tids.len() {
            match self.tids[a].cmp(&other.tids[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.tids[a]);
                    a += 1;
                    b += 1;
                }
            }
        }
        TidSet { tids: out }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &TidSet) -> TidSet {
        let mut out = Vec::new();
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.tids.len() {
            if b >= other.tids.len() {
                out.extend_from_slice(&self.tids[a..]);
                break;
            }
            match self.tids[a].cmp(&other.tids[b]) {
                std::cmp::Ordering::Less => {
                    out.push(self.tids[a]);
                    a += 1;
                }
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    a += 1;
                    b += 1;
                }
            }
        }
        TidSet { tids: out }
    }

    /// Set union `self ∪ other`.
    pub fn union(&self, other: &TidSet) -> TidSet {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.tids.len() && b < other.tids.len() {
            match self.tids[a].cmp(&other.tids[b]) {
                std::cmp::Ordering::Less => {
                    out.push(self.tids[a]);
                    a += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.tids[b]);
                    b += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.tids[a]);
                    a += 1;
                    b += 1;
                }
            }
        }
        out.extend_from_slice(&self.tids[a..]);
        out.extend_from_slice(&other.tids[b..]);
        TidSet { tids: out }
    }

    /// Counts how many records in the set carry class `c`, given the label
    /// vector of the dataset (indexed by tid).  This is the operation the
    /// permutation engine performs for every rule on every permutation.
    pub fn count_class(&self, labels: &[ClassId], class: ClassId) -> usize {
        self.tids
            .iter()
            .filter(|&&t| labels[t as usize] == class)
            .count()
    }

    /// Memory footprint of the tid list in bytes (used to report the Diffsets
    /// savings in the ablation benchmarks).
    pub fn size_bytes(&self) -> usize {
        self.tids.len() * std::mem::size_of::<u32>()
    }
}

impl FromIterator<u32> for TidSet {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        TidSet::from_tids(iter)
    }
}

/// A packed bitset over record ids: bit `t` is set when record `t` is in the
/// set.  Sixty-four records per machine word, so intersection cardinality is
/// a word-wise `AND` + `count_ones` sweep.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Bitmap {
    words: Vec<u64>,
    n_bits: usize,
}

impl Bitmap {
    /// An all-zero bitmap over `n_bits` record ids.
    pub fn zeros(n_bits: usize) -> Self {
        Bitmap {
            words: vec![0u64; n_bits.div_ceil(64)],
            n_bits,
        }
    }

    /// Packs a sorted tid-set into a bitmap over `n_bits` record ids.
    ///
    /// # Panics
    ///
    /// Panics if a tid is `≥ n_bits`.
    pub fn from_tids(tids: &TidSet, n_bits: usize) -> Self {
        let mut bitmap = Bitmap::zeros(n_bits);
        for &t in tids.tids() {
            bitmap.set(t);
        }
        bitmap
    }

    /// Number of record ids the bitmap covers (bits, not set bits).
    pub fn n_bits(&self) -> usize {
        self.n_bits
    }

    /// Sets bit `t`.
    #[inline]
    pub fn set(&mut self, t: u32) {
        let t = t as usize;
        assert!(t < self.n_bits, "tid {t} out of range 0..{}", self.n_bits);
        self.words[t / 64] |= 1u64 << (t % 64);
    }

    /// True when bit `t` is set.
    #[inline]
    pub fn contains(&self, t: u32) -> bool {
        let t = t as usize;
        t < self.n_bits && self.words[t / 64] & (1u64 << (t % 64)) != 0
    }

    /// Clears every bit, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits (the cardinality of the record set).
    pub fn count_ones(&self) -> usize {
        kernel::count_ones(&self.words)
    }

    /// Cardinality of the intersection `self ∩ other`: the word-wise
    /// `AND` + popcount kernel of the bitmap permutation engine.  Debug
    /// builds assert matching sizes; the kernel itself only sweeps the
    /// common word prefix.
    #[inline]
    pub fn and_count(&self, other: &Bitmap) -> usize {
        debug_assert_eq!(self.n_bits, other.n_bits, "bitmap sizes differ");
        kernel::and_count(&self.words, &other.words)
    }

    /// Cardinality of the difference `self \ other` (`AND NOT` + popcount):
    /// the complement-cover primitive negative rules build on.
    #[inline]
    pub fn andnot_count(&self, other: &Bitmap) -> usize {
        debug_assert_eq!(self.n_bits, other.n_bits, "bitmap sizes differ");
        kernel::andnot_count(&self.words, &other.words)
    }

    /// Intersection cardinality of `self` against *every* bitmap in
    /// `others` in one cache-blocked pass: the slice of bitmaps is packed
    /// into a transposed [`LaneBlock`] so each of `self`'s words is loaded
    /// once and swept against all lanes.  Equivalent to mapping
    /// [`Bitmap::and_count`] over `others`, bit for bit.
    pub fn and_count_many(&self, others: &[Bitmap]) -> Vec<usize> {
        let mut block = LaneBlock::zeros(others.len(), self.n_bits);
        for (lane, other) in others.iter().enumerate() {
            debug_assert_eq!(self.n_bits, other.n_bits, "bitmap sizes differ");
            block.copy_lane_from(lane, other);
        }
        let mut acc = vec![0u32; others.len().max(1)];
        block.and_count_per_lane(self, &mut acc);
        acc[..others.len()].iter().map(|&c| c as usize).collect()
    }

    /// The packed words, low record ids first.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Memory footprint of the packed words in bytes.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }
}

/// One [`Bitmap`] per class, built from a label vector.  The permutation
/// engine keeps one of these per worker and re-fills it from the shuffled
/// labels on every permutation (an `O(n)` sweep that is amortised over every
/// rule-support count of that permutation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassBitmaps {
    bitmaps: Vec<Bitmap>,
}

impl ClassBitmaps {
    /// Creates empty per-class bitmaps for `n_classes` classes over
    /// `n_records` records.
    pub fn new(n_classes: usize, n_records: usize) -> Self {
        ClassBitmaps {
            bitmaps: (0..n_classes).map(|_| Bitmap::zeros(n_records)).collect(),
        }
    }

    /// Builds per-class bitmaps directly from a label vector.
    pub fn from_labels(labels: &[ClassId], n_classes: usize) -> Self {
        let mut bitmaps = ClassBitmaps::new(n_classes, labels.len());
        bitmaps.fill(labels);
        bitmaps
    }

    /// Re-fills the bitmaps from a (shuffled) label vector, reusing the
    /// allocations.
    ///
    /// # Panics
    ///
    /// Panics if the label vector length or a class id does not match the
    /// dimensions the bitmaps were created with.
    pub fn fill(&mut self, labels: &[ClassId]) {
        for bitmap in &mut self.bitmaps {
            assert_eq!(
                bitmap.n_bits(),
                labels.len(),
                "label vector length mismatch"
            );
            bitmap.clear();
        }
        for (t, &c) in labels.iter().enumerate() {
            self.bitmaps[c as usize].words[t / 64] |= 1u64 << (t % 64);
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.bitmaps.len()
    }

    /// The bitmap of one class.
    pub fn class(&self, class: ClassId) -> &Bitmap {
        &self.bitmaps[class as usize]
    }
}

/// A block of `lanes` equally sized bitmaps in *transposed* (lane-blocked)
/// layout: word `w` of lane `l` lives at `words[w * lanes + l]`, so all
/// lanes' copies of one word index are contiguous in memory.
///
/// This is the batched permutation engine's working set: one lane per
/// permutation of a chunk, one block per class.  A rule-cover sweep then
/// loads each cover word **once** and `AND`s it against `lanes` adjacent
/// permuted label words ([`LaneBlock::and_count_per_lane`]), instead of
/// re-reading the cover for every permutation — turning B passes over the
/// cover into one cache-blocked pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneBlock {
    words: Vec<u64>,
    lanes: usize,
    words_per_lane: usize,
    n_bits: usize,
}

impl LaneBlock {
    /// An all-zero block of `lanes` bitmaps over `n_bits` record ids each.
    pub fn zeros(lanes: usize, n_bits: usize) -> Self {
        let words_per_lane = n_bits.div_ceil(64);
        LaneBlock {
            words: vec![0u64; words_per_lane * lanes],
            lanes,
            words_per_lane,
            n_bits,
        }
    }

    /// Number of lanes (bitmaps) in the block.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of record ids each lane covers.
    pub fn n_bits(&self) -> usize {
        self.n_bits
    }

    /// Clears every lane, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Sets bit `t` of lane `lane`.
    #[inline]
    pub fn set(&mut self, lane: usize, t: u32) {
        let t = t as usize;
        debug_assert!(lane < self.lanes, "lane {lane} out of range");
        debug_assert!(t < self.n_bits, "tid {t} out of range 0..{}", self.n_bits);
        self.words[(t / 64) * self.lanes + lane] |= 1u64 << (t % 64);
    }

    /// Copies a conventionally laid-out bitmap into one lane of the block.
    ///
    /// # Panics
    ///
    /// Panics if the bitmap's size differs from the block's.
    pub fn copy_lane_from(&mut self, lane: usize, bitmap: &Bitmap) {
        assert_eq!(bitmap.n_bits(), self.n_bits, "bitmap sizes differ");
        assert!(lane < self.lanes, "lane {lane} out of range");
        for (w, &word) in bitmap.words().iter().enumerate() {
            self.words[w * self.lanes + lane] = word;
        }
    }

    /// The transposed words (`[word][lane]` layout).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Writes `acc[l] = |cover ∩ lane l|` for every lane in one pass over
    /// the block.  `acc` must hold at least [`LaneBlock::lanes`] counters.
    #[inline]
    pub fn and_count_per_lane(&self, cover: &Bitmap, acc: &mut [u32]) {
        debug_assert_eq!(cover.n_bits(), self.n_bits, "bitmap sizes differ");
        if self.lanes == 0 {
            return;
        }
        kernel::and_count_many(cover.words(), &self.words, self.lanes, acc);
    }

    /// Writes `acc[l] = |lane l|` (popcount per lane) in one pass.
    #[inline]
    pub fn count_ones_per_lane(&self, acc: &mut [u32]) {
        if self.lanes == 0 {
            return;
        }
        kernel::count_ones_many(&self.words, self.lanes, acc);
    }

    /// Writes `acc[l]` = how many of the sorted record ids in `tids` are
    /// set in lane `l` — the sparse (tid-list) counting kernel of the
    /// batched path: one lane-group load per id instead of one label-array
    /// walk per permutation.
    #[inline]
    pub fn tid_hits_per_lane(&self, tids: &[u32], acc: &mut [u32]) {
        if self.lanes == 0 {
            return;
        }
        kernel::gather_count_many(tids, &self.words, self.lanes, acc);
    }

    /// Memory footprint of the packed words in bytes.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }
}

/// One [`LaneBlock`] per class: the batched counterpart of
/// [`ClassBitmaps`].  Where the per-permutation engine re-fills one set of
/// class bitmaps B times per chunk, the batched engine fills these blocks
/// **once** from all B shuffled label vectors and then sweeps every rule
/// cover against all permutations of the chunk in lane-blocked passes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassLaneBlocks {
    blocks: Vec<LaneBlock>,
    lanes: usize,
    n_records: usize,
}

impl ClassLaneBlocks {
    /// Creates empty per-class lane blocks for `n_classes` classes,
    /// `lanes` permutations and `n_records` records.
    pub fn new(n_classes: usize, lanes: usize, n_records: usize) -> Self {
        ClassLaneBlocks {
            blocks: (0..n_classes)
                .map(|_| LaneBlock::zeros(lanes, n_records))
                .collect(),
            lanes,
            n_records,
        }
    }

    /// Re-fills the blocks from a lane-major flat slice of label vectors
    /// (`labels_by_lane[lane * n_records + t]` = label of record `t` under
    /// permutation `lane`), reusing the allocations.  This is the
    /// block-transposed counterpart of calling [`ClassBitmaps::fill`] once
    /// per permutation.
    ///
    /// # Panics
    ///
    /// Panics if the slice length is not `lanes * n_records`.
    pub fn fill(&mut self, labels_by_lane: &[ClassId]) {
        assert_eq!(
            labels_by_lane.len(),
            self.lanes * self.n_records,
            "label block length mismatch"
        );
        for block in &mut self.blocks {
            block.clear();
        }
        for (lane, labels) in labels_by_lane.chunks_exact(self.n_records).enumerate() {
            for (t, &c) in labels.iter().enumerate() {
                let block = &mut self.blocks[c as usize];
                block.words[(t / 64) * self.lanes + lane] |= 1u64 << (t % 64);
            }
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.blocks.len()
    }

    /// Number of permutation lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The lane block of one class.
    pub fn class(&self, class: ClassId) -> &LaneBlock {
        &self.blocks[class as usize]
    }

    /// Memory footprint of all blocks in bytes.
    pub fn size_bytes(&self) -> usize {
        self.blocks.iter().map(LaneBlock::size_bytes).sum()
    }
}

/// The cover of a pattern in the set-enumeration tree: either the full
/// tid-set, or — when the pattern's support is close to its parent's — the
/// diffset `tids(parent) \ tids(pattern)` (§4.2.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cover {
    /// The pattern's full record id list.
    Tids(TidSet),
    /// The ids of records that contain the parent but not this pattern.
    Diffset(TidSet),
}

impl Cover {
    /// Chooses the representation the paper prescribes: store the full
    /// tid-set if `supp(X) ≤ supp(parent)/2`, otherwise store the diffset.
    pub fn choose(parent_tids: &TidSet, own_tids: TidSet) -> Cover {
        if own_tids.len() * 2 <= parent_tids.len() {
            Cover::Tids(own_tids)
        } else {
            Cover::Diffset(parent_tids.difference(&own_tids))
        }
    }

    /// True when the diffset representation is in use.
    pub fn is_diffset(&self) -> bool {
        matches!(self, Cover::Diffset(_))
    }

    /// Support of the pattern, given its parent's support.
    pub fn support(&self, parent_support: usize) -> usize {
        match self {
            Cover::Tids(t) => t.len(),
            Cover::Diffset(d) => parent_support - d.len(),
        }
    }

    /// Reconstructs the full tid-set, given the parent's tid-set.
    pub fn materialize(&self, parent_tids: &TidSet) -> TidSet {
        match self {
            Cover::Tids(t) => t.clone(),
            Cover::Diffset(d) => parent_tids.difference(d),
        }
    }

    /// Rule support (`supp(X ⇒ c)`) given the parent's rule support for the
    /// same class and the label vector.
    ///
    /// With a full tid-set the class members are counted directly; with a
    /// diffset the paper's identity is used:
    /// `supp(X ⇒ c) = supp(parent ⇒ c) − |{t ∈ Diffset(X) : label(t) = c}|`.
    pub fn rule_support(
        &self,
        parent_rule_support: usize,
        labels: &[ClassId],
        class: ClassId,
    ) -> usize {
        match self {
            Cover::Tids(t) => t.count_class(labels, class),
            Cover::Diffset(d) => parent_rule_support - d.count_class(labels, class),
        }
    }

    /// The stored id list itself — the full tid-set or the diffset,
    /// whichever representation is in use.
    pub fn stored_tids(&self) -> &TidSet {
        match self {
            Cover::Tids(t) => t,
            Cover::Diffset(d) => d,
        }
    }

    /// Number of ids in the stored list (what a tid-list counting pass has to
    /// touch per permutation; the density input of the bitmap auto-selection).
    pub fn stored_len(&self) -> usize {
        self.stored_tids().len()
    }

    /// Packs the stored id list into a [`Bitmap`] over `n_records` record
    /// ids.  Computed once per mined forest — covers never change across
    /// permutations.
    pub fn stored_bitmap(&self, n_records: usize) -> Bitmap {
        Bitmap::from_tids(self.stored_tids(), n_records)
    }

    /// Rule support (`supp(X ⇒ c)`) computed from the cover's stored bitmap
    /// and the class's label bitmap: word-wise `AND` + popcount instead of
    /// per-record label indexing.  `stored_bits` must be
    /// [`Cover::stored_bitmap`] of this cover; equivalent to
    /// [`Cover::rule_support`] on the labels `class_bits` was built from.
    #[inline]
    pub fn rule_support_bitmap(
        &self,
        parent_rule_support: usize,
        stored_bits: &Bitmap,
        class_bits: &Bitmap,
    ) -> usize {
        match self {
            Cover::Tids(_) => stored_bits.and_count(class_bits),
            Cover::Diffset(_) => parent_rule_support - stored_bits.and_count(class_bits),
        }
    }

    /// Bytes used by the stored id list.
    pub fn size_bytes(&self) -> usize {
        match self {
            Cover::Tids(t) => t.size_bytes(),
            Cover::Diffset(d) => d.size_bytes(),
        }
    }
}

/// Vertical view of a dataset: one tid-set per item plus the class label
/// vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerticalDataset {
    n_records: usize,
    n_classes: usize,
    item_tids: Vec<TidSet>,
    labels: Vec<ClassId>,
}

impl VerticalDataset {
    /// Builds the vertical layout from a horizontal dataset in one pass.
    /// Works for any item source — attribute rows and baskets alike — because
    /// the bitmap columns are sized by the dataset's
    /// [`ItemSpace`](crate::itemspace::ItemSpace), not by schema columns.
    pub fn from_dataset(dataset: &Dataset) -> Self {
        let n_items = dataset.n_items();
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); n_items];
        for (tid, record) in dataset.records().iter().enumerate() {
            for &item in record.items() {
                buckets[item as usize].push(tid as u32);
            }
        }
        let item_tids = buckets
            .into_iter()
            .map(|tids| TidSet { tids }) // already sorted: tids pushed in increasing order
            .collect();
        VerticalDataset {
            n_records: dataset.n_records(),
            n_classes: dataset.n_classes(),
            item_tids,
            labels: dataset.class_labels(),
        }
    }

    /// Number of records.
    pub fn n_records(&self) -> usize {
        self.n_records
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of distinct items.
    pub fn n_items(&self) -> usize {
        self.item_tids.len()
    }

    /// The tid-set of an item.
    pub fn item_tids(&self, item: ItemId) -> &TidSet {
        &self.item_tids[item as usize]
    }

    /// Support of an item.
    pub fn item_support(&self, item: ItemId) -> usize {
        self.item_tids[item as usize].len()
    }

    /// The class label of every record, indexed by tid.
    pub fn labels(&self) -> &[ClassId] {
        &self.labels
    }

    /// Per-class record counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &c in &self.labels {
            counts[c as usize] += 1;
        }
        counts
    }

    /// Replaces the label vector (used by the permutation engine; the
    /// structural part of the vertical layout is shared untouched).
    pub fn with_labels(&self, labels: Vec<ClassId>) -> VerticalDataset {
        assert_eq!(labels.len(), self.n_records, "label vector length mismatch");
        VerticalDataset {
            n_records: self.n_records,
            n_classes: self.n_classes,
            item_tids: self.item_tids.clone(),
            labels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Pattern;
    use crate::record::Record;
    use crate::schema::Schema;

    fn toy() -> Dataset {
        let schema = Schema::synthetic(&[2, 2], 2).unwrap();
        // items: A0: {0,1}, A1: {2,3}
        let records = vec![
            Record::new(vec![0, 2], 0),
            Record::new(vec![0, 3], 0),
            Record::new(vec![1, 2], 1),
            Record::new(vec![0, 2], 1),
            Record::new(vec![1, 3], 0),
        ];
        Dataset::new(schema, records).unwrap()
    }

    #[test]
    fn tidset_construction_and_queries() {
        let t = TidSet::from_tids([5, 1, 3, 1]);
        assert_eq!(t.tids(), &[1, 3, 5]);
        assert_eq!(t.len(), 3);
        assert!(t.contains(3));
        assert!(!t.contains(2));
        assert!(TidSet::empty().is_empty());
        assert_eq!(TidSet::full(4).tids(), &[0, 1, 2, 3]);
    }

    #[test]
    fn tidset_set_operations() {
        let a = TidSet::from_tids([1, 2, 3, 5, 8]);
        let b = TidSet::from_tids([2, 3, 4, 8, 9]);
        assert_eq!(a.intersect(&b).tids(), &[2, 3, 8]);
        assert_eq!(a.difference(&b).tids(), &[1, 5]);
        assert_eq!(b.difference(&a).tids(), &[4, 9]);
        assert_eq!(a.union(&b).tids(), &[1, 2, 3, 4, 5, 8, 9]);
        // identities
        assert_eq!(a.intersect(&TidSet::empty()).len(), 0);
        assert_eq!(a.difference(&TidSet::empty()), a);
        assert_eq!(a.union(&TidSet::empty()), a);
    }

    #[test]
    fn tidset_count_class() {
        let labels = vec![0u32, 1, 0, 1, 1];
        let t = TidSet::from_tids([0, 1, 3]);
        assert_eq!(t.count_class(&labels, 1), 2);
        assert_eq!(t.count_class(&labels, 0), 1);
    }

    #[test]
    fn cover_chooses_representation_per_paper_rule() {
        let parent = TidSet::from_tids(0..10);
        // small child: supp 4 <= 10/2 → tids
        let small = TidSet::from_tids([0, 1, 2, 3]);
        let c = Cover::choose(&parent, small.clone());
        assert!(!c.is_diffset());
        assert_eq!(c.support(parent.len()), 4);
        assert_eq!(c.materialize(&parent), small);

        // large child: supp 8 > 5 → diffset of size 2
        let large = TidSet::from_tids([0, 1, 2, 3, 4, 5, 6, 7]);
        let c = Cover::choose(&parent, large.clone());
        assert!(c.is_diffset());
        assert_eq!(c.support(parent.len()), 8);
        assert_eq!(c.size_bytes(), 2 * 4);
        assert_eq!(c.materialize(&parent), large);
    }

    #[test]
    fn cover_rule_support_identities() {
        let labels = vec![0u32, 0, 1, 1, 0, 1, 0, 0, 1, 0];
        let parent = TidSet::from_tids(0..10);
        let parent_rule_support = parent.count_class(&labels, 0); // 6
        let child = TidSet::from_tids([0, 1, 2, 3, 4, 5, 6]); // supp 7 → diffset
        let expected = child.count_class(&labels, 0);
        let c = Cover::choose(&parent, child.clone());
        assert!(c.is_diffset());
        assert_eq!(c.rule_support(parent_rule_support, &labels, 0), expected);

        let small_child = TidSet::from_tids([2, 3, 5]);
        let c = Cover::choose(&parent, small_child.clone());
        assert!(!c.is_diffset());
        assert_eq!(
            c.rule_support(parent_rule_support, &labels, 1),
            small_child.count_class(&labels, 1)
        );
    }

    #[test]
    fn vertical_matches_horizontal_supports() {
        let d = toy();
        let v = VerticalDataset::from_dataset(&d);
        assert_eq!(v.n_records(), 5);
        assert_eq!(v.n_items(), 4);
        for item in 0..4u32 {
            assert_eq!(v.item_support(item), d.item_support(item), "item {item}");
        }
        // pattern {0,2} via tidset intersection
        let t = v.item_tids(0).intersect(v.item_tids(2));
        assert_eq!(t.len(), d.support(&Pattern::from_items([0, 2])));
        // rule support via count_class
        assert_eq!(
            t.count_class(v.labels(), 1),
            d.rule_support(&Pattern::from_items([0, 2]), 1)
        );
    }

    #[test]
    fn bitmap_andnot_count_is_set_difference() {
        let a = Bitmap::from_tids(&TidSet::from_tids([0, 3, 64, 65, 100]), 130);
        let b = Bitmap::from_tids(&TidSet::from_tids([3, 65, 129]), 130);
        assert_eq!(a.andnot_count(&b), 3); // {0, 64, 100}
        assert_eq!(b.andnot_count(&a), 1); // {129}
    }

    #[test]
    fn and_count_many_matches_per_bitmap_counts() {
        let n = 200;
        let cover = Bitmap::from_tids(&TidSet::from_tids((0..n as u32).step_by(3)), n);
        let others: Vec<Bitmap> = (0..5)
            .map(|k| {
                Bitmap::from_tids(&TidSet::from_tids((k..n as u32).step_by(2 + k as usize)), n)
            })
            .collect();
        let batched = cover.and_count_many(&others);
        let singles: Vec<usize> = others.iter().map(|b| cover.and_count(b)).collect();
        assert_eq!(batched, singles);
        assert!(cover.and_count_many(&[]).is_empty());
    }

    #[test]
    fn lane_block_round_trips_bitmaps() {
        let n = 150;
        let bitmaps: Vec<Bitmap> = (0..3)
            .map(|k| Bitmap::from_tids(&TidSet::from_tids((k..n as u32).step_by(5)), n))
            .collect();
        let mut block = LaneBlock::zeros(3, n);
        for (lane, b) in bitmaps.iter().enumerate() {
            block.copy_lane_from(lane, b);
        }
        let mut ones = vec![0u32; 3];
        block.count_ones_per_lane(&mut ones);
        for (lane, b) in bitmaps.iter().enumerate() {
            assert_eq!(ones[lane] as usize, b.count_ones(), "lane {lane}");
        }
        let tids: Vec<u32> = vec![0, 5, 7, 64, 100, 149];
        let mut hits = vec![0u32; 3];
        block.tid_hits_per_lane(&tids, &mut hits);
        for (lane, b) in bitmaps.iter().enumerate() {
            let expect = tids.iter().filter(|&&t| b.contains(t)).count();
            assert_eq!(hits[lane] as usize, expect, "lane {lane}");
        }
    }

    #[test]
    fn class_lane_blocks_match_per_perm_class_bitmaps() {
        let n = 100;
        let n_classes = 3;
        let lanes = 4;
        // Four deterministic pseudo-shuffled label vectors, lane-major.
        let mut flat: Vec<ClassId> = Vec::with_capacity(lanes * n);
        for lane in 0..lanes {
            for t in 0..n {
                flat.push(((t * 7 + lane * 13 + t / 9) % n_classes) as ClassId);
            }
        }
        let mut blocks = ClassLaneBlocks::new(n_classes, lanes, n);
        blocks.fill(&flat);
        assert_eq!(blocks.n_classes(), n_classes);
        assert_eq!(blocks.lanes(), lanes);
        let cover = Bitmap::from_tids(&TidSet::from_tids((0..n as u32).step_by(2)), n);
        let mut acc = vec![0u32; lanes];
        for c in 0..n_classes as ClassId {
            blocks.class(c).and_count_per_lane(&cover, &mut acc);
            for lane in 0..lanes {
                let labels = &flat[lane * n..(lane + 1) * n];
                let per_perm = ClassBitmaps::from_labels(labels, n_classes);
                assert_eq!(
                    acc[lane] as usize,
                    cover.and_count(per_perm.class(c)),
                    "class {c} lane {lane}"
                );
            }
        }
    }

    #[test]
    fn with_labels_swaps_labels_only() {
        let d = toy();
        let v = VerticalDataset::from_dataset(&d);
        let new_labels = vec![1u32, 1, 1, 0, 0];
        let v2 = v.with_labels(new_labels.clone());
        assert_eq!(v2.labels(), new_labels.as_slice());
        assert_eq!(v2.item_tids(0), v.item_tids(0));
        assert_eq!(v2.class_counts(), vec![2, 3]);
    }
}
