//! Emulated UCI datasets (Table 2 of the paper).
//!
//! The paper's real-world experiments use four UCI datasets — adult, german,
//! hypo and mushroom — discretized with MLC++.  This reproduction has no
//! network access and no redistribution rights over those files, so we
//! generate *emulated* datasets with the same number of records, attributes
//! and classes, and with attribute/class correlation structure tuned so that
//! the p-value distribution of the mined rules has the same character the
//! paper reports (Figure 15):
//!
//! * **adult** and **mushroom** — most rules are extremely significant
//!   (p < 10⁻¹²): many attributes are strongly predictive of the class.
//! * **german** and **hypo** — a substantial fraction of rules have p-values
//!   between 10⁻⁶ and 10⁻², which is exactly the regime where the correction
//!   approaches disagree.
//!
//! Every generator is deterministic (seeded from the dataset name) so
//! experiments are reproducible run-to-run.
//!
//! If you have the real files, load them with
//! [`loader::load_csv_file`](crate::loader::load_csv_file) instead; every
//! downstream API only sees a [`Dataset`].

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::item::ClassId;
use crate::record::Record;
use crate::schema::{Attribute, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of one emulated dataset: sizes plus per-attribute class
/// correlation strengths.
#[derive(Debug, Clone)]
pub struct CorrelatedConfig {
    /// Dataset name (also seeds the generator).
    pub name: String,
    /// Number of records.
    pub n_records: usize,
    /// Cardinality of each attribute.
    pub cardinalities: Vec<usize>,
    /// Relative class frequencies (normalised internally).
    pub class_weights: Vec<f64>,
    /// Per-attribute correlation strength in `[0, 1]`: 0 means the attribute
    /// is pure noise, 1 means its value is fully determined by the class.
    pub strengths: Vec<f64>,
    /// Skew of the background (class-independent) value distribution, in
    /// `[0, 1)`: 0 draws values uniformly, larger values concentrate the mass
    /// on the first value of each attribute (value `v` gets weight
    /// `(1 − skew)^v`).  Real categorical datasets such as hypo are heavily
    /// skewed — most binary flags are "false" for almost every record — and
    /// this is what makes long patterns frequent at the paper's very high
    /// minimum supports.
    pub background_skew: f64,
}

impl CorrelatedConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), DataError> {
        if self.cardinalities.len() != self.strengths.len() {
            return Err(DataError::invalid_schema(
                "cardinalities and strengths must have the same length",
            ));
        }
        if self.class_weights.len() < 2 {
            return Err(DataError::invalid_schema("need at least two classes"));
        }
        if self.cardinalities.iter().any(|&c| c < 2) {
            return Err(DataError::invalid_schema(
                "every attribute needs at least two values",
            ));
        }
        if self.strengths.iter().any(|&s| !(0.0..=1.0).contains(&s)) {
            return Err(DataError::invalid_schema("strengths must lie in [0, 1]"));
        }
        if !(0.0..1.0).contains(&self.background_skew) {
            return Err(DataError::invalid_schema(
                "background_skew must lie in [0, 1)",
            ));
        }
        Ok(())
    }

    /// Generates the dataset with a seed derived from the configured name.
    pub fn generate(&self) -> Result<Dataset, DataError> {
        self.generate_seeded(seed_from_name(&self.name))
    }

    /// Generates the dataset with an explicit seed.
    pub fn generate_seeded(&self, seed: u64) -> Result<Dataset, DataError> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let n_classes = self.class_weights.len();
        let schema = Schema::new(
            self.cardinalities
                .iter()
                .enumerate()
                .map(|(i, &c)| Attribute::with_cardinality(format!("A{i}"), c))
                .collect(),
            (0..n_classes).map(|i| format!("c{i}")).collect(),
        )?;

        // Normalised cumulative class weights for sampling labels.
        let total_weight: f64 = self.class_weights.iter().sum();
        let cumulative: Vec<f64> = self
            .class_weights
            .iter()
            .scan(0.0, |acc, &w| {
                *acc += w / total_weight;
                Some(*acc)
            })
            .collect();

        // For each attribute and class, a preferred value: values rotate with
        // the class so that different classes prefer different values.
        let preferred: Vec<Vec<usize>> = self
            .cardinalities
            .iter()
            .enumerate()
            .map(|(a, &card)| {
                // The odd stride (3) guarantees that consecutive classes
                // prefer *different* values even for binary attributes.
                (0..n_classes).map(|c| (a * 7 + c * 3) % card).collect()
            })
            .collect();

        // Background (class-independent) value distribution per attribute:
        // uniform when background_skew is 0, otherwise geometric-like weights
        // concentrating on the attribute's first value.
        let background_cumulative: Vec<Vec<f64>> = self
            .cardinalities
            .iter()
            .map(|&card| {
                let weights: Vec<f64> = (0..card)
                    .map(|v| (1.0 - self.background_skew).powi(v as i32))
                    .collect();
                let total: f64 = weights.iter().sum();
                weights
                    .iter()
                    .scan(0.0, |acc, w| {
                        *acc += w / total;
                        Some(*acc)
                    })
                    .collect()
            })
            .collect();

        let mut records = Vec::with_capacity(self.n_records);
        for _ in 0..self.n_records {
            let u: f64 = rng.gen();
            let class = cumulative
                .iter()
                .position(|&c| u <= c)
                .unwrap_or(n_classes - 1);
            let mut items = Vec::with_capacity(self.cardinalities.len());
            for (a, (&card, &strength)) in self
                .cardinalities
                .iter()
                .zip(self.strengths.iter())
                .enumerate()
            {
                let value = if rng.gen::<f64>() < strength {
                    preferred[a][class]
                } else {
                    let u: f64 = rng.gen();
                    background_cumulative[a]
                        .iter()
                        .position(|&c| u <= c)
                        .unwrap_or(card - 1)
                };
                items.push(schema.item_id(a, value)?);
            }
            records.push(Record::new(items, class as ClassId));
        }
        Ok(Dataset::new_unchecked(schema, records))
    }
}

/// Derives a deterministic 64-bit seed from a dataset name (FNV-1a).
pub fn seed_from_name(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// The four emulated datasets of Table 2, by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UciDataset {
    /// adult: 32 561 records, 14 attributes, 2 classes.
    Adult,
    /// german: 1 000 records, 20 attributes, 2 classes.
    German,
    /// hypo: 3 163 records, 25 attributes, 2 classes.
    Hypo,
    /// mushroom: 8 124 records, 22 attributes, 2 classes.
    Mushroom,
}

impl UciDataset {
    /// All four datasets, in the order of Table 2.
    pub fn all() -> [UciDataset; 4] {
        [
            UciDataset::Adult,
            UciDataset::German,
            UciDataset::Hypo,
            UciDataset::Mushroom,
        ]
    }

    /// The dataset's name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            UciDataset::Adult => "adult",
            UciDataset::German => "german",
            UciDataset::Hypo => "hypo",
            UciDataset::Mushroom => "mushroom",
        }
    }

    /// Number of records in the real dataset (Table 2).
    pub fn n_records(&self) -> usize {
        match self {
            UciDataset::Adult => 32_561,
            UciDataset::German => 1_000,
            UciDataset::Hypo => 3_163,
            UciDataset::Mushroom => 8_124,
        }
    }

    /// Number of attributes in the real dataset (Table 2).
    pub fn n_attributes(&self) -> usize {
        match self {
            UciDataset::Adult => 14,
            UciDataset::German => 20,
            UciDataset::Hypo => 25,
            UciDataset::Mushroom => 22,
        }
    }

    /// The per-dataset minimum-support sweeps used by Figures 4, 5, 14 and 16
    /// of the paper.
    pub fn paper_min_sup_sweep(&self) -> Vec<usize> {
        match self {
            UciDataset::Adult => vec![500, 1000, 1500, 2000, 2500, 3000],
            UciDataset::German => vec![30, 40, 50, 60, 70, 80, 90],
            UciDataset::Hypo => vec![1400, 1500, 1600, 1700, 1800, 1900, 2000, 2100],
            UciDataset::Mushroom => vec![200, 400, 600, 800, 1000, 1200],
        }
    }

    /// The generator configuration emulating this dataset.
    pub fn config(&self) -> CorrelatedConfig {
        match self {
            UciDataset::Adult => CorrelatedConfig {
                name: "adult".into(),
                n_records: 32_561,
                cardinalities: vec![5, 8, 5, 16, 7, 14, 6, 5, 2, 5, 4, 4, 4, 8],
                class_weights: vec![0.76, 0.24],
                strengths: vec![
                    0.55, 0.65, 0.35, 0.70, 0.60, 0.75, 0.50, 0.45, 0.30, 0.40, 0.55, 0.35, 0.45,
                    0.25,
                ],
                background_skew: 0.45,
            },
            UciDataset::German => CorrelatedConfig {
                name: "german".into(),
                n_records: 1_000,
                cardinalities: vec![4, 5, 10, 5, 5, 5, 5, 4, 3, 3, 4, 4, 3, 3, 4, 4, 2, 2, 2, 2],
                class_weights: vec![0.70, 0.30],
                strengths: vec![
                    0.22, 0.18, 0.25, 0.15, 0.20, 0.12, 0.10, 0.16, 0.08, 0.10, 0.14, 0.08, 0.18,
                    0.06, 0.12, 0.05, 0.10, 0.06, 0.04, 0.08,
                ],
                background_skew: 0.35,
            },
            UciDataset::Hypo => CorrelatedConfig {
                name: "hypo".into(),
                n_records: 3_163,
                cardinalities: vec![
                    2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 4, 4, 4, 4, 4, 4, 3,
                ],
                class_weights: vec![0.95, 0.05],
                strengths: vec![
                    0.15, 0.10, 0.08, 0.12, 0.06, 0.05, 0.10, 0.08, 0.04, 0.06, 0.05, 0.08, 0.10,
                    0.04, 0.05, 0.06, 0.03, 0.05, 0.20, 0.25, 0.15, 0.18, 0.12, 0.10, 0.08,
                ],
                background_skew: 0.85,
            },
            UciDataset::Mushroom => CorrelatedConfig {
                name: "mushroom".into(),
                n_records: 8_124,
                cardinalities: vec![
                    6, 4, 10, 2, 9, 2, 2, 2, 12, 2, 5, 4, 4, 9, 9, 2, 4, 3, 5, 9, 6, 7,
                ],
                class_weights: vec![0.52, 0.48],
                strengths: vec![
                    0.70, 0.40, 0.55, 0.50, 0.90, 0.45, 0.60, 0.75, 0.65, 0.35, 0.55, 0.60, 0.60,
                    0.70, 0.70, 0.30, 0.45, 0.50, 0.80, 0.85, 0.65, 0.55,
                ],
                background_skew: 0.40,
            },
        }
    }

    /// Generates the emulated dataset.
    pub fn generate(&self) -> Dataset {
        self.config()
            .generate()
            .expect("built-in configurations are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Pattern;

    #[test]
    fn table2_shapes_match_the_paper() {
        for ds in UciDataset::all() {
            let cfg = ds.config();
            assert_eq!(cfg.n_records, ds.n_records(), "{}", ds.name());
            assert_eq!(cfg.cardinalities.len(), ds.n_attributes(), "{}", ds.name());
            assert_eq!(cfg.class_weights.len(), 2, "{}", ds.name());
        }
    }

    #[test]
    fn german_generation_is_deterministic_and_sized() {
        let a = UciDataset::German.generate();
        let b = UciDataset::German.generate();
        assert_eq!(a.n_records(), 1000);
        assert_eq!(a.schema().unwrap().n_attributes(), 20);
        assert_eq!(a, b, "same name ⇒ same seed ⇒ identical dataset");
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = UciDataset::German.config();
        let a = cfg.generate_seeded(1).unwrap();
        let b = cfg.generate_seeded(2).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn class_balance_roughly_matches_weights() {
        let d = UciDataset::German.generate();
        let counts = d.class_counts();
        let frac = counts.count(0) as f64 / d.n_records() as f64;
        assert!((frac - 0.70).abs() < 0.05, "class 0 fraction {frac}");

        let d = UciDataset::Hypo.generate();
        let counts = d.class_counts();
        let frac = counts.count(0) as f64 / d.n_records() as f64;
        assert!((frac - 0.95).abs() < 0.02, "class 0 fraction {frac}");
    }

    #[test]
    fn strongly_correlated_attributes_are_predictive() {
        // In mushroom the strongest attribute (index 4, strength 0.9) should
        // be highly predictive of the class: its preferred value for class 0
        // should appear mostly in class-0 records.
        let d = UciDataset::Mushroom.generate();
        let cfg = UciDataset::Mushroom.config();
        let (attr, _) = cfg
            .strengths
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let card = cfg.cardinalities[attr];
        // Find the value of this attribute most frequent among class-0 records
        // and check its class distribution is far from the base rate.
        let mut best_conf: f64 = 0.0;
        for v in 0..card {
            let item = d.schema().unwrap().item_id(attr, v).unwrap();
            let p = Pattern::singleton(item);
            let supp = d.support(&p);
            if supp < 100 {
                continue;
            }
            let hits = d.rule_support(&p, 0);
            best_conf = best_conf.max(hits as f64 / supp as f64);
        }
        assert!(
            best_conf > 0.8,
            "strongest mushroom attribute should yield a high-confidence rule, got {best_conf}"
        );
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut cfg = UciDataset::German.config();
        cfg.strengths.pop();
        assert!(cfg.validate().is_err());

        let mut cfg = UciDataset::German.config();
        cfg.class_weights = vec![1.0];
        assert!(cfg.validate().is_err());

        let mut cfg = UciDataset::German.config();
        cfg.cardinalities[0] = 1;
        assert!(cfg.validate().is_err());

        let mut cfg = UciDataset::German.config();
        cfg.strengths[0] = 1.5;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn seed_from_name_is_stable_and_distinct() {
        assert_eq!(seed_from_name("adult"), seed_from_name("adult"));
        assert_ne!(seed_from_name("adult"), seed_from_name("german"));
    }

    #[test]
    fn min_sup_sweeps_are_nonempty_and_sorted() {
        for ds in UciDataset::all() {
            let sweep = ds.paper_min_sup_sweep();
            assert!(!sweep.is_empty());
            assert!(sweep.windows(2).all(|w| w[0] < w[1]));
            assert!(*sweep.last().unwrap() < ds.n_records());
        }
    }
}
