//! Cheap `Arc`-based sharing of a loaded dataset and its derived views.
//!
//! A resident engine answers many queries against one loaded dataset, and
//! several of the artifacts derived from it — the [`VerticalDataset`] the
//! miners consume and the packed per-class [`ClassBitmaps`] of the original
//! labels — are expensive to build but immutable once built.  [`SharedDataset`]
//! bundles the dataset with both views behind [`Arc`]s and builds each view
//! **lazily, at most once**, whatever the number of threads asking:
//!
//! ```
//! use sigrule_data::{Dataset, Record, Schema, SharedDataset};
//!
//! let schema = Schema::synthetic(&[2, 2], 2).unwrap();
//! let records = vec![
//!     Record::new(vec![0, 2], 0),
//!     Record::new(vec![1, 3], 1),
//! ];
//! let dataset = Dataset::new(schema, records).unwrap();
//!
//! let shared = SharedDataset::new(dataset);
//! let a = shared.vertical();
//! let b = shared.vertical();
//! // Both handles point at the same lazily built vertical view.
//! assert!(std::sync::Arc::ptr_eq(&a, &b));
//! ```
//!
//! Cloning a `SharedDataset` is a handful of reference-count bumps; clones
//! share the dataset *and* the views (a view built through one clone is
//! visible through every other).

use crate::dataset::Dataset;
use crate::vertical::{ClassBitmaps, VerticalDataset};
use std::sync::{Arc, OnceLock};

/// A dataset plus its lazily built derived views, all behind [`Arc`]s so a
/// long-lived engine and any number of worker threads can share them without
/// copying records.
#[derive(Debug, Clone)]
pub struct SharedDataset {
    dataset: Arc<Dataset>,
    /// Built on first use, then shared; [`OnceLock`] guarantees a single
    /// build even under concurrent first access.
    vertical: Arc<OnceLock<Arc<VerticalDataset>>>,
    /// Per-class bitmaps of the *original* labels, built on first use.
    class_bitmaps: Arc<OnceLock<Arc<ClassBitmaps>>>,
}

impl SharedDataset {
    /// Wraps a dataset for sharing.  No views are built yet.
    pub fn new(dataset: Dataset) -> Self {
        SharedDataset::from_arc(Arc::new(dataset))
    }

    /// Wraps an already `Arc`-ed dataset for sharing.
    pub fn from_arc(dataset: Arc<Dataset>) -> Self {
        SharedDataset {
            dataset,
            vertical: Arc::new(OnceLock::new()),
            class_bitmaps: Arc::new(OnceLock::new()),
        }
    }

    /// The shared dataset.
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.dataset
    }

    /// The vertical (tid-set) view, building it on first call.  Subsequent
    /// calls — from any clone, on any thread — return the same allocation.
    pub fn vertical(&self) -> Arc<VerticalDataset> {
        self.vertical
            .get_or_init(|| Arc::new(VerticalDataset::from_dataset(&self.dataset)))
            .clone()
    }

    /// Packed per-class bitmaps of the original class labels, building them
    /// on first call.
    pub fn class_bitmaps(&self) -> Arc<ClassBitmaps> {
        self.class_bitmaps
            .get_or_init(|| {
                Arc::new(ClassBitmaps::from_labels(
                    &self.dataset.class_labels(),
                    self.dataset.n_classes(),
                ))
            })
            .clone()
    }

    /// True when the vertical view has already been built.
    pub fn vertical_is_built(&self) -> bool {
        self.vertical.get().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use crate::schema::Schema;

    fn toy() -> Dataset {
        let schema = Schema::synthetic(&[2, 2], 2).unwrap();
        let records = vec![
            Record::new(vec![0, 2], 0),
            Record::new(vec![0, 3], 0),
            Record::new(vec![1, 2], 1),
        ];
        Dataset::new(schema, records).unwrap()
    }

    #[test]
    fn views_are_lazy_and_shared() {
        let shared = SharedDataset::new(toy());
        assert!(!shared.vertical_is_built());
        let clone = shared.clone();
        let v1 = shared.vertical();
        assert!(clone.vertical_is_built(), "clones share the built view");
        let v2 = clone.vertical();
        assert!(Arc::ptr_eq(&v1, &v2));
        assert_eq!(v1.n_records(), 3);
    }

    #[test]
    fn vertical_matches_direct_construction() {
        let d = toy();
        let direct = VerticalDataset::from_dataset(&d);
        let shared = SharedDataset::new(d);
        assert_eq!(*shared.vertical(), direct);
    }

    #[test]
    fn class_bitmaps_count_original_labels() {
        let shared = SharedDataset::new(toy());
        let bitmaps = shared.class_bitmaps();
        let b2 = shared.class_bitmaps();
        assert!(Arc::ptr_eq(&bitmaps, &b2));
        assert_eq!(bitmaps.class(0).count_ones(), 2);
        assert_eq!(bitmaps.class(1).count_ones(), 1);
    }

    #[test]
    fn concurrent_first_access_builds_once() {
        let shared = SharedDataset::new(toy());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = shared.clone();
                std::thread::spawn(move || s.vertical())
            })
            .collect();
        let views: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for v in &views[1..] {
            assert!(Arc::ptr_eq(&views[0], v));
        }
    }
}
