//! Schemas: attributes, their categorical domains, class labels, and the
//! mapping between attribute/value pairs and dense [`ItemId`]s.

use crate::error::DataError;
use crate::item::{ClassId, Item, ItemId};
use serde::{Deserialize, Serialize};

/// A categorical attribute and its domain of values.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name, e.g. `"education"`.
    pub name: String,
    /// The value names, e.g. `["primary", "secondary", "tertiary"]`.
    pub values: Vec<String>,
}

impl Attribute {
    /// Creates an attribute from a name and value names.
    pub fn new(name: impl Into<String>, values: Vec<String>) -> Self {
        Attribute {
            name: name.into(),
            values,
        }
    }

    /// Creates an attribute with anonymous values `v0..v{cardinality-1}`.
    pub fn with_cardinality(name: impl Into<String>, cardinality: usize) -> Self {
        Attribute {
            name: name.into(),
            values: (0..cardinality).map(|i| format!("v{i}")).collect(),
        }
    }

    /// Number of values in the attribute's domain.
    pub fn cardinality(&self) -> usize {
        self.values.len()
    }

    /// Index of a value name in the domain, if present.
    pub fn value_index(&self, value: &str) -> Option<usize> {
        self.values.iter().position(|v| v == value)
    }
}

/// The schema of a class-labelled categorical dataset: the attributes, the
/// class labels, and the dense item-id numbering.
///
/// Item ids are assigned in attribute order: attribute 0's values get ids
/// `0..card(0)`, attribute 1's get `card(0)..card(0)+card(1)`, and so on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    attributes: Vec<Attribute>,
    classes: Vec<String>,
    /// `offsets[a]` is the item id of attribute `a`'s first value;
    /// `offsets[attributes.len()]` is the total number of items.
    offsets: Vec<ItemId>,
}

impl Schema {
    /// Builds and validates a schema.
    ///
    /// Requires at least one attribute, at least two class labels, and every
    /// attribute to have at least one value.
    pub fn new(attributes: Vec<Attribute>, classes: Vec<String>) -> Result<Self, DataError> {
        if attributes.is_empty() {
            return Err(DataError::invalid_schema("schema has no attributes"));
        }
        if classes.len() < 2 {
            return Err(DataError::invalid_schema(
                "schema needs at least two class labels",
            ));
        }
        for (i, a) in attributes.iter().enumerate() {
            if a.values.is_empty() {
                return Err(DataError::invalid_schema(format!(
                    "attribute {i} ({}) has an empty domain",
                    a.name
                )));
            }
        }
        let mut offsets = Vec::with_capacity(attributes.len() + 1);
        let mut acc: ItemId = 0;
        for a in &attributes {
            offsets.push(acc);
            acc += a.cardinality() as ItemId;
        }
        offsets.push(acc);
        Ok(Schema {
            attributes,
            classes,
            offsets,
        })
    }

    /// Convenience constructor for purely synthetic schemas: `cardinalities[i]`
    /// is the number of values of attribute `i`, classes are `c0..c{n-1}`.
    pub fn synthetic(cardinalities: &[usize], n_classes: usize) -> Result<Self, DataError> {
        let attributes = cardinalities
            .iter()
            .enumerate()
            .map(|(i, &c)| Attribute::with_cardinality(format!("A{i}"), c))
            .collect();
        let classes = (0..n_classes).map(|i| format!("c{i}")).collect();
        Schema::new(attributes, classes)
    }

    /// The attributes.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Number of attributes.
    pub fn n_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// The class label names.
    pub fn classes(&self) -> &[String] {
        &self.classes
    }

    /// Number of class labels.
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// Total number of distinct items (attribute/value pairs).
    pub fn n_items(&self) -> usize {
        *self.offsets.last().expect("offsets never empty") as usize
    }

    /// Maps an attribute/value pair to its dense item id.
    pub fn item_id(&self, attribute: usize, value: usize) -> Result<ItemId, DataError> {
        let attr = self
            .attributes
            .get(attribute)
            .ok_or(DataError::UnknownAttribute { index: attribute })?;
        if value >= attr.cardinality() {
            return Err(DataError::UnknownValue { attribute, value });
        }
        Ok(self.offsets[attribute] + value as ItemId)
    }

    /// Maps a symbolic [`Item`] to its dense id.
    pub fn intern(&self, item: &Item) -> Result<ItemId, DataError> {
        self.item_id(item.attribute, item.value)
    }

    /// Maps a dense item id back to its attribute and value indices.
    pub fn decode(&self, item: ItemId) -> Result<Item, DataError> {
        if (item as usize) >= self.n_items() {
            return Err(DataError::UnknownAttribute {
                index: item as usize,
            });
        }
        // offsets is sorted; find the attribute whose range contains `item`.
        let attribute = match self.offsets.binary_search(&item) {
            Ok(i) => {
                // `item` is exactly the first value of attribute i, unless i is
                // the sentinel at the end (excluded by the bound check above).
                i
            }
            Err(i) => i - 1,
        };
        let value = (item - self.offsets[attribute]) as usize;
        Ok(Item::new(attribute, value))
    }

    /// Human-readable rendering of an item, e.g. `education=tertiary`.
    pub fn describe_item(&self, item: ItemId) -> String {
        match self.decode(item) {
            Ok(Item { attribute, value }) => {
                let a = &self.attributes[attribute];
                format!("{}={}", a.name, a.values[value])
            }
            Err(_) => format!("<invalid item {item}>"),
        }
    }

    /// The value name of an item alone (without the attribute), e.g.
    /// `tertiary` for `education=tertiary`.
    pub fn describe_value(&self, item: ItemId) -> String {
        match self.decode(item) {
            Ok(Item { attribute, value }) => self.attributes[attribute].values[value].clone(),
            Err(_) => format!("<invalid item {item}>"),
        }
    }

    /// Name of a class label.
    pub fn class_name(&self, class: ClassId) -> Result<&str, DataError> {
        self.classes
            .get(class as usize)
            .map(String::as_str)
            .ok_or(DataError::UnknownClass {
                class: class as usize,
            })
    }

    /// Index of a class label by name.
    pub fn class_index(&self, name: &str) -> Option<ClassId> {
        self.classes
            .iter()
            .position(|c| c == name)
            .map(|i| i as ClassId)
    }

    /// All item ids belonging to one attribute.
    pub fn items_of_attribute(
        &self,
        attribute: usize,
    ) -> Result<std::ops::Range<ItemId>, DataError> {
        if attribute >= self.attributes.len() {
            return Err(DataError::UnknownAttribute { index: attribute });
        }
        Ok(self.offsets[attribute]..self.offsets[attribute + 1])
    }

    /// The attribute index an item id belongs to.
    pub fn attribute_of(&self, item: ItemId) -> Result<usize, DataError> {
        self.decode(item).map(|i| i.attribute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(
            vec![
                Attribute::new("color", vec!["red".into(), "green".into(), "blue".into()]),
                Attribute::new("size", vec!["small".into(), "large".into()]),
            ],
            vec!["yes".into(), "no".into()],
        )
        .unwrap()
    }

    #[test]
    fn item_id_assignment_is_dense_and_ordered() {
        let s = schema();
        assert_eq!(s.n_items(), 5);
        assert_eq!(s.item_id(0, 0).unwrap(), 0);
        assert_eq!(s.item_id(0, 2).unwrap(), 2);
        assert_eq!(s.item_id(1, 0).unwrap(), 3);
        assert_eq!(s.item_id(1, 1).unwrap(), 4);
    }

    #[test]
    fn decode_round_trip() {
        let s = schema();
        for a in 0..s.n_attributes() {
            for v in 0..s.attributes()[a].cardinality() {
                let id = s.item_id(a, v).unwrap();
                let back = s.decode(id).unwrap();
                assert_eq!(back, Item::new(a, v));
            }
        }
    }

    #[test]
    fn decode_rejects_out_of_range() {
        let s = schema();
        assert!(s.decode(5).is_err());
        assert!(s.decode(999).is_err());
    }

    #[test]
    fn item_id_rejects_invalid_pairs() {
        let s = schema();
        assert!(s.item_id(0, 3).is_err());
        assert!(s.item_id(2, 0).is_err());
    }

    #[test]
    fn describe_item_and_classes() {
        let s = schema();
        assert_eq!(s.describe_item(1), "color=green");
        assert_eq!(s.describe_item(4), "size=large");
        assert_eq!(s.class_name(0).unwrap(), "yes");
        assert_eq!(s.class_index("no"), Some(1));
        assert_eq!(s.class_index("maybe"), None);
        assert!(s.class_name(7).is_err());
    }

    #[test]
    fn items_of_attribute_ranges() {
        let s = schema();
        assert_eq!(s.items_of_attribute(0).unwrap(), 0..3);
        assert_eq!(s.items_of_attribute(1).unwrap(), 3..5);
        assert!(s.items_of_attribute(2).is_err());
        assert_eq!(s.attribute_of(4).unwrap(), 1);
    }

    #[test]
    fn synthetic_schema() {
        let s = Schema::synthetic(&[2, 3, 4], 2).unwrap();
        assert_eq!(s.n_attributes(), 3);
        assert_eq!(s.n_items(), 9);
        assert_eq!(s.n_classes(), 2);
        assert_eq!(s.attributes()[2].cardinality(), 4);
    }

    #[test]
    fn schema_validation() {
        assert!(Schema::new(vec![], vec!["a".into(), "b".into()]).is_err());
        assert!(Schema::new(
            vec![Attribute::with_cardinality("A", 2)],
            vec!["only".into()]
        )
        .is_err());
        assert!(Schema::new(
            vec![Attribute::new("A", vec![])],
            vec!["a".into(), "b".into()]
        )
        .is_err());
    }

    #[test]
    fn intern_symbolic_item() {
        let s = schema();
        assert_eq!(s.intern(&Item::new(1, 1)).unwrap(), 4);
        assert!(s.intern(&Item::new(9, 0)).is_err());
    }
}
