//! Loading class-labelled datasets from delimited text files (CSV / TSV).
//!
//! A deliberately small, dependency-free delimited-text reader: each row is
//! one record, one column is the class label, every other column is an
//! attribute.  Columns whose values all parse as numbers are treated as
//! continuous and discretized (supervised Fayyad–Irani by default); all other
//! columns are treated as categorical.  Missing values (`?` or empty) are
//! mapped to a dedicated `"?"` category, matching the common treatment of the
//! UCI files used in the paper.
//!
//! The reader is *streaming*: [`load_csv_reader`] pulls lines from any
//! [`BufRead`] source one at a time, so a file is never materialised as a
//! single string.  Fields may be quoted (RFC 4180 style: `"a, b"`, doubled
//! `""` escapes a literal quote, and a quoted field may span lines), and the
//! class column can be selected by index ([`LoadOptions::class_column`]) or
//! by header name ([`LoadOptions::class_column_name`]).
//!
//! [`dataset_to_csv`] is the inverse: it renders any [`Dataset`] back to CSV
//! with the schema's attribute/value/class names, so datasets can round-trip
//! through files (e.g. synthetic data exported for the `sigrule` CLI).

use crate::dataset::Dataset;
use crate::discretize::{DiscretizeMethod, Discretizer};
use crate::error::DataError;
use crate::item::ClassId;
use crate::record::Record;
use crate::schema::{Attribute, Schema};
use std::io::BufRead;
use std::path::Path;

/// Options controlling CSV/TSV parsing and preprocessing.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Column separator (default `,`).
    pub separator: char,
    /// Quote character wrapping fields that contain the separator, the quote
    /// itself (doubled) or line breaks; `None` disables quote handling
    /// (default `Some('"')`).
    pub quote: Option<char>,
    /// Whether the first row is a header with attribute names.
    pub has_header: bool,
    /// Index of the class column (default: the last column).
    pub class_column: Option<usize>,
    /// Name of the class column, resolved against the header.  Takes
    /// precedence over [`LoadOptions::class_column`]; requires
    /// [`LoadOptions::has_header`].
    pub class_column_name: Option<String>,
    /// How to discretize numeric columns.
    pub discretize: DiscretizeMethod,
    /// Token(s) treated as a missing value.
    pub missing_tokens: Vec<String>,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            separator: ',',
            quote: Some('"'),
            has_header: true,
            class_column: None,
            class_column_name: None,
            discretize: DiscretizeMethod::EntropyMdl,
            missing_tokens: vec!["?".to_string(), String::new()],
        }
    }
}

impl LoadOptions {
    /// Options for tab-separated files (everything else as per
    /// [`LoadOptions::default`]).
    pub fn tsv() -> Self {
        LoadOptions {
            separator: '\t',
            ..LoadOptions::default()
        }
    }

    /// Sets the class column by header name.
    pub fn with_class_name(mut self, name: impl Into<String>) -> Self {
        self.class_column_name = Some(name.into());
        self
    }

    /// Sets the class column by index.
    pub fn with_class_column(mut self, index: usize) -> Self {
        self.class_column = Some(index);
        self
    }
}

/// Outcome of splitting one physical line into fields.
enum SplitOutcome {
    /// A complete row.
    Row(Vec<String>),
    /// The line ended inside a quoted field; the caller should append the
    /// next physical line (with the line break restored) and retry.
    Unterminated,
}

/// Splits one logical row into trimmed fields, honouring the quote character.
fn split_fields(text: &str, separator: char, quote: Option<char>) -> Result<SplitOutcome, String> {
    let Some(q) = quote else {
        return Ok(SplitOutcome::Row(
            text.split(separator)
                .map(|s| s.trim().to_string())
                .collect(),
        ));
    };

    let mut fields = Vec::new();
    let mut chars = text.chars().peekable();
    loop {
        // Skip leading whitespace of the field (but not the separator).
        while matches!(chars.peek(), Some(&c) if c.is_whitespace() && c != separator) {
            chars.next();
        }
        if chars.peek() == Some(&q) {
            chars.next();
            let mut field = String::new();
            loop {
                match chars.next() {
                    Some(c) if c == q => {
                        if chars.peek() == Some(&q) {
                            chars.next();
                            field.push(q);
                        } else {
                            break;
                        }
                    }
                    Some(c) => field.push(c),
                    None => return Ok(SplitOutcome::Unterminated),
                }
            }
            // Only whitespace may follow the closing quote before the
            // separator (or end of row).
            loop {
                match chars.next() {
                    None => {
                        fields.push(field);
                        return Ok(SplitOutcome::Row(fields));
                    }
                    Some(c) if c == separator => break,
                    Some(c) if c.is_whitespace() => continue,
                    Some(c) => {
                        return Err(format!("unexpected character {c:?} after closing quote"))
                    }
                }
            }
            fields.push(field);
        } else {
            let mut field = String::new();
            let mut ended = true;
            for c in chars.by_ref() {
                if c == separator {
                    ended = false;
                    break;
                }
                field.push(c);
            }
            fields.push(field.trim().to_string());
            if ended {
                return Ok(SplitOutcome::Row(fields));
            }
        }
    }
}

/// Reads logical rows (line number of their first physical line + fields)
/// from a line source, merging physical lines while a quoted field is open.
fn read_rows(
    lines: impl Iterator<Item = Result<String, std::io::Error>>,
    options: &LoadOptions,
) -> Result<Vec<(usize, Vec<String>)>, DataError> {
    let mut rows = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (idx, line) in lines.enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let (start, text) = match pending.take() {
            Some((start, mut buf)) => {
                buf.push('\n');
                buf.push_str(&line);
                (start, buf)
            }
            None => {
                if line.trim().is_empty() {
                    continue;
                }
                (line_no, line)
            }
        };
        match split_fields(&text, options.separator, options.quote) {
            Ok(SplitOutcome::Row(fields)) => rows.push((start, fields)),
            Ok(SplitOutcome::Unterminated) => pending = Some((start, text)),
            Err(reason) => {
                return Err(DataError::Parse {
                    line: start,
                    reason,
                })
            }
        }
    }
    if let Some((start, _)) = pending {
        return Err(DataError::Parse {
            line: start,
            reason: "unterminated quoted field at end of input".into(),
        });
    }
    Ok(rows)
}

/// Parses a class-labelled dataset from any buffered reader (streaming: one
/// line at a time).
pub fn load_csv_reader<R: BufRead>(reader: R, options: &LoadOptions) -> Result<Dataset, DataError> {
    let mut rows = read_rows(reader.lines(), options)?;

    let header: Option<Vec<String>> = if options.has_header {
        if rows.is_empty() {
            return Err(DataError::Parse {
                line: 1,
                reason: "empty file".into(),
            });
        }
        Some(rows.remove(0).1)
    } else {
        None
    };
    if rows.is_empty() {
        return Err(DataError::Parse {
            line: 1,
            reason: "no data rows".into(),
        });
    }

    let n_columns = rows[0].1.len();
    if n_columns < 2 {
        return Err(DataError::Parse {
            line: rows[0].0,
            reason: "need at least one attribute column and one class column".into(),
        });
    }
    if let Some(h) = &header {
        if h.len() != n_columns {
            return Err(DataError::Parse {
                line: 1,
                reason: format!(
                    "header has {} columns but the data rows have {n_columns}",
                    h.len()
                ),
            });
        }
    }
    for (line_no, row) in &rows {
        if row.len() != n_columns {
            return Err(DataError::Parse {
                line: *line_no,
                reason: format!("expected {n_columns} columns, found {}", row.len()),
            });
        }
    }

    let column_names: Vec<String> = match &header {
        Some(h) => h.clone(),
        None => (0..n_columns).map(|i| format!("A{i}")).collect(),
    };

    let class_column = match (&options.class_column_name, options.class_column) {
        (Some(name), _) => {
            if header.is_none() {
                return Err(DataError::invalid_schema(
                    "class column selected by name but the file has no header",
                ));
            }
            column_names
                .iter()
                .position(|c| c == name)
                .ok_or_else(|| DataError::UnknownColumn {
                    name: name.clone(),
                    available: column_names.clone(),
                })?
        }
        (None, Some(index)) => index,
        (None, None) => n_columns - 1,
    };
    if class_column >= n_columns {
        return Err(DataError::Parse {
            line: rows[0].0,
            reason: format!(
                "class column {class_column} out of range (file has {n_columns} columns)"
            ),
        });
    }

    // Class labels.
    let mut class_names: Vec<String> = Vec::new();
    let mut class_ids: Vec<ClassId> = Vec::with_capacity(rows.len());
    for (_, row) in &rows {
        let label = &row[class_column];
        let id = match class_names.iter().position(|c| c == label) {
            Some(i) => i,
            None => {
                class_names.push(label.clone());
                class_names.len() - 1
            }
        };
        class_ids.push(id as ClassId);
    }
    if class_names.len() < 2 {
        return Err(DataError::invalid_schema(
            "class column has fewer than two distinct labels",
        ));
    }

    // Per-column processing: numeric columns are discretized, categorical
    // columns are interned.
    let attribute_columns: Vec<usize> = (0..n_columns).filter(|&c| c != class_column).collect();
    let mut attributes: Vec<Attribute> = Vec::with_capacity(attribute_columns.len());
    let mut encoded_columns: Vec<Vec<usize>> = Vec::with_capacity(attribute_columns.len());

    for &col in &attribute_columns {
        let raw: Vec<&String> = rows.iter().map(|(_, r)| &r[col]).collect();
        let is_missing = |s: &str| options.missing_tokens.iter().any(|t| t == s);
        let numeric: Option<Vec<f64>> = {
            let parsed: Vec<Option<f64>> = raw
                .iter()
                .map(|s| {
                    if is_missing(s) {
                        None
                    } else {
                        s.parse::<f64>().ok()
                    }
                })
                .collect();
            let n_present = parsed.iter().filter(|p| p.is_some()).count();
            let n_non_missing = raw.iter().filter(|s| !is_missing(s)).count();
            if n_present == n_non_missing && n_present > 0 {
                Some(parsed.iter().map(|p| p.unwrap_or(f64::NAN)).collect())
            } else {
                None
            }
        };

        if let Some(values) = numeric {
            // Fit the discretizer on non-missing values only.
            let present: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
            let present_labels: Vec<ClassId> = values
                .iter()
                .zip(class_ids.iter())
                .filter(|(v, _)| !v.is_nan())
                .map(|(_, &c)| c)
                .collect();
            let disc = Discretizer::fit(&present, &present_labels, options.discretize);
            let has_missing = values.iter().any(|v| v.is_nan());
            let mut value_names = disc.bin_labels();
            if has_missing {
                value_names.push("?".to_string());
            }
            let missing_bin = disc.n_bins();
            let encoded: Vec<usize> = values
                .iter()
                .map(|&v| if v.is_nan() { missing_bin } else { disc.bin(v) })
                .collect();
            attributes.push(Attribute::new(column_names[col].clone(), value_names));
            encoded_columns.push(encoded);
        } else {
            let mut value_names: Vec<String> = Vec::new();
            let mut encoded = Vec::with_capacity(raw.len());
            for s in &raw {
                let token = if is_missing(s) { "?" } else { s.as_str() };
                let idx = match value_names.iter().position(|v| v == token) {
                    Some(i) => i,
                    None => {
                        value_names.push(token.to_string());
                        value_names.len() - 1
                    }
                };
                encoded.push(idx);
            }
            attributes.push(Attribute::new(column_names[col].clone(), value_names));
            encoded_columns.push(encoded);
        }
    }

    let classes = class_names;
    let schema = Schema::new(attributes, classes)?;
    let mut records = Vec::with_capacity(rows.len());
    for row_idx in 0..rows.len() {
        let mut items = Vec::with_capacity(attribute_columns.len());
        for (attr_idx, column) in encoded_columns.iter().enumerate() {
            items.push(schema.item_id(attr_idx, column[row_idx])?);
        }
        records.push(Record::new(items, class_ids[row_idx]));
    }
    Dataset::new(schema, records)
}

/// Parses CSV text into a [`Dataset`].
pub fn load_csv_str(text: &str, options: &LoadOptions) -> Result<Dataset, DataError> {
    load_csv_reader(text.as_bytes(), options)
}

/// Loads a CSV file from disk (buffered and streaming).
pub fn load_csv_file(path: impl AsRef<Path>, options: &LoadOptions) -> Result<Dataset, DataError> {
    let file = std::fs::File::open(path)?;
    load_csv_reader(std::io::BufReader::new(file), options)
}

/// Quotes a field for CSV output when it contains the separator, a quote, a
/// line break, or leading/trailing whitespace.
fn csv_field(value: &str, separator: char) -> String {
    let needs_quotes = value.contains(separator)
        || value.contains('"')
        || value.contains('\n')
        || value.contains('\r')
        || value != value.trim();
    if needs_quotes {
        format!("\"{}\"", value.replace('"', "\"\""))
    } else {
        value.to_string()
    }
}

/// Renders a dataset back to CSV with the schema's attribute, value and class
/// names; the class label is the last column, named `class`.
///
/// Loading the result with [`load_csv_str`] and default options reconstructs
/// a dataset with the same per-item supports (value and class *indices* may
/// be renumbered in first-seen order; names are preserved).  Note that purely
/// numeric categorical value names would be re-discretized on load.
pub fn dataset_to_csv(dataset: &Dataset) -> String {
    let schema = dataset.schema();
    let separator = ',';
    let mut out = String::new();
    let header: Vec<String> = schema
        .attributes()
        .iter()
        .map(|a| csv_field(&a.name, separator))
        .chain(std::iter::once("class".to_string()))
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for record in dataset.records() {
        let mut cells = Vec::with_capacity(schema.n_attributes() + 1);
        for &item in record.items() {
            cells.push(csv_field(&schema.describe_value(item), separator));
        }
        cells.push(csv_field(
            schema.class_name(record.class()).unwrap_or("?"),
            separator,
        ));
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
age,color,outcome
23,red,yes
31,blue,no
45,red,yes
52,blue,no
29,green,yes
61,red,no
47,green,yes
38,blue,no
";

    #[test]
    fn loads_mixed_numeric_and_categorical_columns() {
        let d = load_csv_str(SAMPLE, &LoadOptions::default()).unwrap();
        assert_eq!(d.n_records(), 8);
        assert_eq!(d.n_classes(), 2);
        assert_eq!(d.schema().n_attributes(), 2);
        assert_eq!(d.schema().attributes()[0].name, "age");
        assert_eq!(d.schema().attributes()[1].name, "color");
        // color has three categories
        assert_eq!(d.schema().attributes()[1].cardinality(), 3);
        // classes preserve first-seen order
        assert_eq!(d.schema().classes(), &["yes".to_string(), "no".to_string()]);
    }

    #[test]
    fn no_header_and_custom_separator() {
        let text = "1;a;x\n2;b;y\n3;a;x\n";
        let opts = LoadOptions {
            separator: ';',
            has_header: false,
            ..LoadOptions::default()
        };
        let d = load_csv_str(text, &opts).unwrap();
        assert_eq!(d.n_records(), 3);
        assert_eq!(d.schema().attributes()[0].name, "A0");
        assert_eq!(d.n_classes(), 2);
    }

    #[test]
    fn tsv_options() {
        let text = "a\tb\tcls\n1\tu\tx\n2\tv\ty\n";
        let d = load_csv_str(text, &LoadOptions::tsv()).unwrap();
        assert_eq!(d.n_records(), 2);
        assert_eq!(d.schema().attributes()[1].name, "b");
    }

    #[test]
    fn missing_values_get_their_own_category() {
        let text = "a,b,cls\n1,?,x\n2,u,y\n3,v,x\n4,u,y\n";
        let d = load_csv_str(text, &LoadOptions::default()).unwrap();
        let b = &d.schema().attributes()[1];
        assert!(b.values.contains(&"?".to_string()));
    }

    #[test]
    fn class_column_override() {
        let text = "cls,a\nx,1\ny,2\nx,3\n";
        let opts = LoadOptions {
            class_column: Some(0),
            ..LoadOptions::default()
        };
        let d = load_csv_str(text, &opts).unwrap();
        assert_eq!(d.schema().n_attributes(), 1);
        assert_eq!(d.schema().classes().len(), 2);
    }

    #[test]
    fn class_column_by_name() {
        let text = "cls,a\nx,1\ny,2\nx,3\n";
        let opts = LoadOptions::default().with_class_name("cls");
        let d = load_csv_str(text, &opts).unwrap();
        assert_eq!(d.schema().n_attributes(), 1);
        assert_eq!(d.schema().attributes()[0].name, "a");

        let missing = LoadOptions::default().with_class_name("nope");
        let err = load_csv_str(text, &missing).unwrap_err();
        assert!(matches!(err, DataError::UnknownColumn { .. }));
        assert!(err.to_string().contains("nope"));
        assert!(err.to_string().contains("cls"));

        // By-name selection needs a header to resolve against.
        let headerless = LoadOptions {
            has_header: false,
            ..LoadOptions::default().with_class_name("cls")
        };
        assert!(load_csv_str(text, &headerless).is_err());
    }

    #[test]
    fn quoted_fields() {
        let text = "name,note,cls\nalpha,\"a, quoted\",x\nbeta,\"say \"\"hi\"\"\",y\n gamma , \"padded\" ,x\n";
        let d = load_csv_str(text, &LoadOptions::default()).unwrap();
        assert_eq!(d.n_records(), 3);
        let note = &d.schema().attributes()[1];
        assert!(note.values.contains(&"a, quoted".to_string()));
        assert!(note.values.contains(&"say \"hi\"".to_string()));
        assert!(note.values.contains(&"padded".to_string()));
        // unquoted fields are still trimmed
        let name = &d.schema().attributes()[0];
        assert!(name.values.contains(&"gamma".to_string()));
    }

    #[test]
    fn quoted_field_spanning_lines() {
        let text = "a,cls\n\"line\nbreak\",x\nplain,y\n";
        let d = load_csv_str(text, &LoadOptions::default()).unwrap();
        assert_eq!(d.n_records(), 2);
        assert!(d.schema().attributes()[0]
            .values
            .contains(&"line\nbreak".to_string()));
    }

    #[test]
    fn unterminated_quote_is_a_parse_error() {
        let text = "a,cls\n\"never closed,x\n";
        let err = load_csv_str(text, &LoadOptions::default()).unwrap_err();
        assert!(matches!(err, DataError::Parse { .. }));
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn garbage_after_closing_quote_is_a_parse_error() {
        let text = "a,cls\n\"ok\"junk,x\n\"fine\",y\n";
        let err = load_csv_str(text, &LoadOptions::default()).unwrap_err();
        assert!(matches!(err, DataError::Parse { line: 2, .. }));
    }

    #[test]
    fn quote_handling_can_be_disabled() {
        let text = "a,cls\n\"raw,x\n\"other,y\n";
        let opts = LoadOptions {
            quote: None,
            ..LoadOptions::default()
        };
        let d = load_csv_str(text, &opts).unwrap();
        assert!(d.schema().attributes()[0]
            .values
            .contains(&"\"raw".to_string()));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(load_csv_str("", &LoadOptions::default()).is_err());
        assert!(load_csv_str("only_header\n", &LoadOptions::default()).is_err());
        // ragged rows
        let text = "a,b,cls\n1,2,x\n1,y\n";
        assert!(load_csv_str(text, &LoadOptions::default()).is_err());
        // single class label
        let text = "a,cls\n1,x\n2,x\n";
        assert!(load_csv_str(text, &LoadOptions::default()).is_err());
        // class column out of range
        let opts = LoadOptions {
            class_column: Some(9),
            ..LoadOptions::default()
        };
        assert!(load_csv_str("a,b\n1,x\n2,y\n", &opts).is_err());
    }

    #[test]
    fn header_width_must_match_the_data_rows() {
        // Wider data than header: previously panicked (indexing past the
        // header) or silently misaligned the column names.
        let err = load_csv_str("cls,a\nx,1,2\ny,3,4\n", &LoadOptions::default()).unwrap_err();
        assert!(matches!(err, DataError::Parse { line: 1, .. }));
        assert!(err.to_string().contains("header has 2 columns"));
        let opts = LoadOptions {
            class_column: Some(0),
            ..LoadOptions::default()
        };
        assert!(load_csv_str("cls,a\nx,1,2\ny,3,4\n", &opts).is_err());
        // Narrower data than header.
        let err = load_csv_str("a,b,cls\n1,x\n2,y\n", &LoadOptions::default()).unwrap_err();
        assert!(matches!(err, DataError::Parse { line: 1, .. }));
    }

    #[test]
    fn parse_error_reports_line_number() {
        let text = "a,b,cls\n1,2,x\n3,4,y\n5,z\n";
        match load_csv_str(text, &LoadOptions::default()).unwrap_err() {
            DataError::Parse { line, reason } => {
                assert_eq!(line, 4);
                assert!(reason.contains("expected 3 columns"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join("sigrule_loader_test.csv");
        std::fs::write(&path, SAMPLE).unwrap();
        let d = load_csv_file(&path, &LoadOptions::default()).unwrap();
        assert_eq!(d.n_records(), 8);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_csv_file("/nonexistent/sigrule.csv", &LoadOptions::default()).unwrap_err();
        assert!(matches!(err, DataError::Io { .. }));
    }

    #[test]
    fn export_then_load_preserves_counts_and_names() {
        let d = load_csv_str(
            "x,cls\nred,a\nblue,b\nred,a\n\"c,d\",b\n",
            &LoadOptions::default(),
        )
        .unwrap();
        let csv = dataset_to_csv(&d);
        assert!(csv.starts_with("x,class\n"));
        assert!(csv.contains("\"c,d\""));
        let back = load_csv_str(&csv, &LoadOptions::default()).unwrap();
        assert_eq!(back.n_records(), d.n_records());
        assert_eq!(back.n_classes(), d.n_classes());
        assert_eq!(
            back.schema().attributes()[0].values,
            d.schema().attributes()[0].values
        );
    }
}
