//! Loading class-labelled datasets from delimited text files.
//!
//! A deliberately small, dependency-free CSV reader: each row is one record,
//! one column is the class label, every other column is an attribute.
//! Columns whose values all parse as numbers are treated as continuous and
//! discretized (supervised Fayyad–Irani by default); all other columns are
//! treated as categorical.  Missing values (`?` or empty) are mapped to a
//! dedicated `"?"` category, matching the common treatment of the UCI files
//! used in the paper.

use crate::dataset::Dataset;
use crate::discretize::{DiscretizeMethod, Discretizer};
use crate::error::DataError;
use crate::item::ClassId;
use crate::record::Record;
use crate::schema::{Attribute, Schema};
use std::path::Path;

/// Options controlling CSV parsing and preprocessing.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Column separator (default `,`).
    pub separator: char,
    /// Whether the first row is a header with attribute names.
    pub has_header: bool,
    /// Index of the class column (default: the last column).
    pub class_column: Option<usize>,
    /// How to discretize numeric columns.
    pub discretize: DiscretizeMethod,
    /// Token(s) treated as a missing value.
    pub missing_tokens: Vec<String>,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            separator: ',',
            has_header: true,
            class_column: None,
            discretize: DiscretizeMethod::EntropyMdl,
            missing_tokens: vec!["?".to_string(), String::new()],
        }
    }
}

/// Parses CSV text into a [`Dataset`].
pub fn load_csv_str(text: &str, options: &LoadOptions) -> Result<Dataset, DataError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty());

    let (header, first_data_line) = if options.has_header {
        let (line_no, header_line) = lines.next().ok_or(DataError::Parse {
            line: 1,
            reason: "empty file".into(),
        })?;
        let _ = line_no;
        (
            Some(
                header_line
                    .split(options.separator)
                    .map(|s| s.trim().to_string())
                    .collect::<Vec<_>>(),
            ),
            None,
        )
    } else {
        (None, lines.next())
    };

    let mut rows: Vec<(usize, Vec<String>)> = Vec::new();
    if let Some((line_no, line)) = first_data_line {
        rows.push((
            line_no,
            line.split(options.separator)
                .map(|s| s.trim().to_string())
                .collect(),
        ));
    }
    for (line_no, line) in lines {
        rows.push((
            line_no,
            line.split(options.separator)
                .map(|s| s.trim().to_string())
                .collect(),
        ));
    }
    if rows.is_empty() {
        return Err(DataError::Parse {
            line: 1,
            reason: "no data rows".into(),
        });
    }

    let n_columns = rows[0].1.len();
    if n_columns < 2 {
        return Err(DataError::Parse {
            line: rows[0].0,
            reason: "need at least one attribute column and one class column".into(),
        });
    }
    for (line_no, row) in &rows {
        if row.len() != n_columns {
            return Err(DataError::Parse {
                line: *line_no,
                reason: format!("expected {n_columns} columns, found {}", row.len()),
            });
        }
    }
    let class_column = options.class_column.unwrap_or(n_columns - 1);
    if class_column >= n_columns {
        return Err(DataError::Parse {
            line: rows[0].0,
            reason: format!("class column {class_column} out of range"),
        });
    }

    let column_names: Vec<String> = match &header {
        Some(h) => h.clone(),
        None => (0..n_columns).map(|i| format!("A{i}")).collect(),
    };

    // Class labels.
    let mut class_names: Vec<String> = Vec::new();
    let mut class_ids: Vec<ClassId> = Vec::with_capacity(rows.len());
    for (_, row) in &rows {
        let label = &row[class_column];
        let id = match class_names.iter().position(|c| c == label) {
            Some(i) => i,
            None => {
                class_names.push(label.clone());
                class_names.len() - 1
            }
        };
        class_ids.push(id as ClassId);
    }
    if class_names.len() < 2 {
        return Err(DataError::invalid_schema(
            "class column has fewer than two distinct labels",
        ));
    }

    // Per-column processing: numeric columns are discretized, categorical
    // columns are interned.
    let attribute_columns: Vec<usize> = (0..n_columns).filter(|&c| c != class_column).collect();
    let mut attributes: Vec<Attribute> = Vec::with_capacity(attribute_columns.len());
    let mut encoded_columns: Vec<Vec<usize>> = Vec::with_capacity(attribute_columns.len());

    for &col in &attribute_columns {
        let raw: Vec<&String> = rows.iter().map(|(_, r)| &r[col]).collect();
        let is_missing = |s: &str| options.missing_tokens.iter().any(|t| t == s);
        let numeric: Option<Vec<f64>> = {
            let parsed: Vec<Option<f64>> = raw
                .iter()
                .map(|s| {
                    if is_missing(s) {
                        None
                    } else {
                        s.parse::<f64>().ok()
                    }
                })
                .collect();
            let n_present = parsed.iter().filter(|p| p.is_some()).count();
            let n_non_missing = raw.iter().filter(|s| !is_missing(s)).count();
            if n_present == n_non_missing && n_present > 0 {
                Some(parsed.iter().map(|p| p.unwrap_or(f64::NAN)).collect())
            } else {
                None
            }
        };

        if let Some(values) = numeric {
            // Fit the discretizer on non-missing values only.
            let present: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
            let present_labels: Vec<ClassId> = values
                .iter()
                .zip(class_ids.iter())
                .filter(|(v, _)| !v.is_nan())
                .map(|(_, &c)| c)
                .collect();
            let disc = Discretizer::fit(&present, &present_labels, options.discretize);
            let has_missing = values.iter().any(|v| v.is_nan());
            let mut value_names = disc.bin_labels();
            if has_missing {
                value_names.push("?".to_string());
            }
            let missing_bin = disc.n_bins();
            let encoded: Vec<usize> = values
                .iter()
                .map(|&v| if v.is_nan() { missing_bin } else { disc.bin(v) })
                .collect();
            attributes.push(Attribute::new(column_names[col].clone(), value_names));
            encoded_columns.push(encoded);
        } else {
            let mut value_names: Vec<String> = Vec::new();
            let mut encoded = Vec::with_capacity(raw.len());
            for s in &raw {
                let token = if is_missing(s) { "?" } else { s.as_str() };
                let idx = match value_names.iter().position(|v| v == token) {
                    Some(i) => i,
                    None => {
                        value_names.push(token.to_string());
                        value_names.len() - 1
                    }
                };
                encoded.push(idx);
            }
            attributes.push(Attribute::new(column_names[col].clone(), value_names));
            encoded_columns.push(encoded);
        }
    }

    let classes = class_names;
    let schema = Schema::new(attributes, classes)?;
    let mut records = Vec::with_capacity(rows.len());
    for row_idx in 0..rows.len() {
        let mut items = Vec::with_capacity(attribute_columns.len());
        for (attr_idx, column) in encoded_columns.iter().enumerate() {
            items.push(schema.item_id(attr_idx, column[row_idx])?);
        }
        records.push(Record::new(items, class_ids[row_idx]));
    }
    Dataset::new(schema, records)
}

/// Loads a CSV file from disk.
pub fn load_csv_file(path: impl AsRef<Path>, options: &LoadOptions) -> Result<Dataset, DataError> {
    let text = std::fs::read_to_string(path)?;
    load_csv_str(&text, options)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
age,color,outcome
23,red,yes
31,blue,no
45,red,yes
52,blue,no
29,green,yes
61,red,no
47,green,yes
38,blue,no
";

    #[test]
    fn loads_mixed_numeric_and_categorical_columns() {
        let d = load_csv_str(SAMPLE, &LoadOptions::default()).unwrap();
        assert_eq!(d.n_records(), 8);
        assert_eq!(d.n_classes(), 2);
        assert_eq!(d.schema().n_attributes(), 2);
        assert_eq!(d.schema().attributes()[0].name, "age");
        assert_eq!(d.schema().attributes()[1].name, "color");
        // color has three categories
        assert_eq!(d.schema().attributes()[1].cardinality(), 3);
        // classes preserve first-seen order
        assert_eq!(d.schema().classes(), &["yes".to_string(), "no".to_string()]);
    }

    #[test]
    fn no_header_and_custom_separator() {
        let text = "1;a;x\n2;b;y\n3;a;x\n";
        let opts = LoadOptions {
            separator: ';',
            has_header: false,
            ..LoadOptions::default()
        };
        let d = load_csv_str(text, &opts).unwrap();
        assert_eq!(d.n_records(), 3);
        assert_eq!(d.schema().attributes()[0].name, "A0");
        assert_eq!(d.n_classes(), 2);
    }

    #[test]
    fn missing_values_get_their_own_category() {
        let text = "a,b,cls\n1,?,x\n2,u,y\n3,v,x\n4,u,y\n";
        let d = load_csv_str(text, &LoadOptions::default()).unwrap();
        let b = &d.schema().attributes()[1];
        assert!(b.values.contains(&"?".to_string()));
    }

    #[test]
    fn class_column_override() {
        let text = "cls,a\nx,1\ny,2\nx,3\n";
        let opts = LoadOptions {
            class_column: Some(0),
            ..LoadOptions::default()
        };
        let d = load_csv_str(text, &opts).unwrap();
        assert_eq!(d.schema().n_attributes(), 1);
        assert_eq!(d.schema().classes().len(), 2);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(load_csv_str("", &LoadOptions::default()).is_err());
        assert!(load_csv_str("only_header\n", &LoadOptions::default()).is_err());
        // ragged rows
        let text = "a,b,cls\n1,2,x\n1,y\n";
        assert!(load_csv_str(text, &LoadOptions::default()).is_err());
        // single class label
        let text = "a,cls\n1,x\n2,x\n";
        assert!(load_csv_str(text, &LoadOptions::default()).is_err());
        // class column out of range
        let opts = LoadOptions {
            class_column: Some(9),
            ..LoadOptions::default()
        };
        assert!(load_csv_str("a,b\n1,x\n2,y\n", &opts).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join("sigrule_loader_test.csv");
        std::fs::write(&path, SAMPLE).unwrap();
        let d = load_csv_file(&path, &LoadOptions::default()).unwrap();
        assert_eq!(d.n_records(), 8);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_csv_file("/nonexistent/sigrule.csv", &LoadOptions::default()).unwrap_err();
        assert!(matches!(err, DataError::Io { .. }));
    }
}
