//! Loading class-labelled datasets from delimited text files (CSV / TSV).
//!
//! A deliberately small, dependency-free delimited-text reader: each row is
//! one record, one column is the class label, every other column is an
//! attribute.  Columns whose values all parse as numbers are treated as
//! continuous and discretized (supervised Fayyad–Irani by default); all other
//! columns are treated as categorical.  Missing values (`?` or empty) are
//! mapped to a dedicated `"?"` category, matching the common treatment of the
//! UCI files used in the paper.
//!
//! The reader is *streaming*: [`load_csv_reader`] pulls lines from any
//! [`BufRead`] source one at a time, so a file is never materialised as a
//! single string.  Fields may be quoted (RFC 4180 style: `"a, b"`, doubled
//! `""` escapes a literal quote, and a quoted field may span lines), and the
//! class column can be selected by index ([`LoadOptions::class_column`]) or
//! by header name ([`LoadOptions::class_column_name`]).
//!
//! [`dataset_to_csv`] is the inverse: it renders any columnar [`Dataset`]
//! back to CSV with the schema's attribute/value/class names, so datasets can
//! round-trip through files (e.g. synthetic data exported for the `sigrule`
//! CLI).
//!
//! Besides rows, the module reads *transaction* (market-basket) files: one
//! basket per line, items separated by whitespace and/or commas, the class
//! given by an optional `label:<name>` token ([`load_baskets_reader`]).
//! Basket files compile into the same [`ItemSpace`]-backed [`Dataset`] the
//! CSV path produces, so miners and corrections run unchanged on either.
//! [`InputFormat`] and [`detect_format`] pick the reader for a file.

use crate::dataset::Dataset;
use crate::discretize::{DiscretizeMethod, Discretizer};
use crate::error::DataError;
use crate::item::{ClassId, ItemId};
use crate::itemspace::ItemSpace;
use crate::record::Record;
use crate::schema::{Attribute, Schema};
use std::collections::HashMap;
use std::io::BufRead;
use std::path::Path;

/// Options controlling CSV/TSV parsing and preprocessing.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Column separator (default `,`).
    pub separator: char,
    /// Quote character wrapping fields that contain the separator, the quote
    /// itself (doubled) or line breaks; `None` disables quote handling
    /// (default `Some('"')`).
    pub quote: Option<char>,
    /// Whether the first row is a header with attribute names.
    pub has_header: bool,
    /// Index of the class column (default: the last column).
    pub class_column: Option<usize>,
    /// Name of the class column, resolved against the header.  Takes
    /// precedence over [`LoadOptions::class_column`]; requires
    /// [`LoadOptions::has_header`].
    pub class_column_name: Option<String>,
    /// How to discretize numeric columns.
    pub discretize: DiscretizeMethod,
    /// Token(s) treated as a missing value.
    pub missing_tokens: Vec<String>,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            separator: ',',
            quote: Some('"'),
            has_header: true,
            class_column: None,
            class_column_name: None,
            discretize: DiscretizeMethod::EntropyMdl,
            missing_tokens: vec!["?".to_string(), String::new()],
        }
    }
}

impl LoadOptions {
    /// Options for tab-separated files (everything else as per
    /// [`LoadOptions::default`]).
    pub fn tsv() -> Self {
        LoadOptions {
            separator: '\t',
            ..LoadOptions::default()
        }
    }

    /// Sets the class column by header name.
    pub fn with_class_name(mut self, name: impl Into<String>) -> Self {
        self.class_column_name = Some(name.into());
        self
    }

    /// Sets the class column by index.
    pub fn with_class_column(mut self, index: usize) -> Self {
        self.class_column = Some(index);
        self
    }
}

/// Outcome of splitting one physical line into fields.
enum SplitOutcome {
    /// A complete row.
    Row(Vec<String>),
    /// The line ended inside a quoted field; the caller should append the
    /// next physical line (with the line break restored) and retry.
    Unterminated,
}

/// Splits one logical row into trimmed fields, honouring the quote character.
fn split_fields(text: &str, separator: char, quote: Option<char>) -> Result<SplitOutcome, String> {
    let Some(q) = quote else {
        return Ok(SplitOutcome::Row(
            text.split(separator)
                .map(|s| s.trim().to_string())
                .collect(),
        ));
    };

    let mut fields = Vec::new();
    let mut chars = text.chars().peekable();
    loop {
        // Skip leading whitespace of the field (but not the separator).
        while matches!(chars.peek(), Some(&c) if c.is_whitespace() && c != separator) {
            chars.next();
        }
        if chars.peek() == Some(&q) {
            chars.next();
            let mut field = String::new();
            loop {
                match chars.next() {
                    Some(c) if c == q => {
                        if chars.peek() == Some(&q) {
                            chars.next();
                            field.push(q);
                        } else {
                            break;
                        }
                    }
                    Some(c) => field.push(c),
                    None => return Ok(SplitOutcome::Unterminated),
                }
            }
            // Only whitespace may follow the closing quote before the
            // separator (or end of row).
            loop {
                match chars.next() {
                    None => {
                        fields.push(field);
                        return Ok(SplitOutcome::Row(fields));
                    }
                    Some(c) if c == separator => break,
                    Some(c) if c.is_whitespace() => continue,
                    Some(c) => {
                        return Err(format!("unexpected character {c:?} after closing quote"))
                    }
                }
            }
            fields.push(field);
        } else {
            let mut field = String::new();
            let mut ended = true;
            for c in chars.by_ref() {
                if c == separator {
                    ended = false;
                    break;
                }
                field.push(c);
            }
            fields.push(field.trim().to_string());
            if ended {
                return Ok(SplitOutcome::Row(fields));
            }
        }
    }
}

/// Reads logical rows (line number of their first physical line + fields)
/// from a line source, merging physical lines while a quoted field is open.
fn read_rows(
    lines: impl Iterator<Item = Result<String, std::io::Error>>,
    options: &LoadOptions,
) -> Result<Vec<(usize, Vec<String>)>, DataError> {
    let mut rows = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (idx, line) in lines.enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let (start, text) = match pending.take() {
            Some((start, mut buf)) => {
                buf.push('\n');
                buf.push_str(&line);
                (start, buf)
            }
            None => {
                if line.trim().is_empty() {
                    continue;
                }
                (line_no, line)
            }
        };
        match split_fields(&text, options.separator, options.quote) {
            Ok(SplitOutcome::Row(fields)) => rows.push((start, fields)),
            Ok(SplitOutcome::Unterminated) => pending = Some((start, text)),
            Err(reason) => {
                return Err(DataError::Parse {
                    line: start,
                    reason,
                })
            }
        }
    }
    if let Some((start, _)) = pending {
        return Err(DataError::Parse {
            line: start,
            reason: "unterminated quoted field at end of input".into(),
        });
    }
    Ok(rows)
}

/// Parses a class-labelled dataset from any buffered reader (streaming: one
/// line at a time).
pub fn load_csv_reader<R: BufRead>(reader: R, options: &LoadOptions) -> Result<Dataset, DataError> {
    let mut rows = read_rows(reader.lines(), options)?;

    let header: Option<Vec<String>> = if options.has_header {
        if rows.is_empty() {
            return Err(DataError::Parse {
                line: 1,
                reason: "empty file".into(),
            });
        }
        Some(rows.remove(0).1)
    } else {
        None
    };
    if rows.is_empty() {
        return Err(DataError::Parse {
            line: 1,
            reason: "no data rows".into(),
        });
    }

    let n_columns = rows[0].1.len();
    if n_columns < 2 {
        return Err(DataError::Parse {
            line: rows[0].0,
            reason: "need at least one attribute column and one class column".into(),
        });
    }
    if let Some(h) = &header {
        if h.len() != n_columns {
            return Err(DataError::Parse {
                line: 1,
                reason: format!(
                    "header has {} columns but the data rows have {n_columns}",
                    h.len()
                ),
            });
        }
    }
    for (line_no, row) in &rows {
        if row.len() != n_columns {
            return Err(DataError::Parse {
                line: *line_no,
                reason: format!("expected {n_columns} columns, found {}", row.len()),
            });
        }
    }

    let column_names: Vec<String> = match &header {
        Some(h) => h.clone(),
        None => (0..n_columns).map(|i| format!("A{i}")).collect(),
    };

    let class_column = match (&options.class_column_name, options.class_column) {
        (Some(name), _) => {
            if header.is_none() {
                return Err(DataError::invalid_schema(
                    "class column selected by name but the file has no header",
                ));
            }
            column_names
                .iter()
                .position(|c| c == name)
                .ok_or_else(|| DataError::UnknownColumn {
                    name: name.clone(),
                    available: column_names.clone(),
                })?
        }
        (None, Some(index)) => index,
        (None, None) => n_columns - 1,
    };
    if class_column >= n_columns {
        return Err(DataError::Parse {
            line: rows[0].0,
            reason: format!(
                "class column {class_column} out of range (file has {n_columns} columns)"
            ),
        });
    }

    // Class labels.
    let mut class_names: Vec<String> = Vec::new();
    let mut class_ids: Vec<ClassId> = Vec::with_capacity(rows.len());
    for (_, row) in &rows {
        let label = &row[class_column];
        let id = match class_names.iter().position(|c| c == label) {
            Some(i) => i,
            None => {
                class_names.push(label.clone());
                class_names.len() - 1
            }
        };
        class_ids.push(id as ClassId);
    }
    if class_names.len() < 2 {
        return Err(DataError::invalid_schema(
            "class column has fewer than two distinct labels",
        ));
    }

    // Per-column processing: numeric columns are discretized, categorical
    // columns are interned.
    let attribute_columns: Vec<usize> = (0..n_columns).filter(|&c| c != class_column).collect();
    let mut attributes: Vec<Attribute> = Vec::with_capacity(attribute_columns.len());
    let mut encoded_columns: Vec<Vec<usize>> = Vec::with_capacity(attribute_columns.len());

    for &col in &attribute_columns {
        let raw: Vec<&String> = rows.iter().map(|(_, r)| &r[col]).collect();
        let is_missing = |s: &str| options.missing_tokens.iter().any(|t| t == s);
        let numeric: Option<Vec<f64>> = {
            let parsed: Vec<Option<f64>> = raw
                .iter()
                .map(|s| {
                    if is_missing(s) {
                        None
                    } else {
                        s.parse::<f64>().ok()
                    }
                })
                .collect();
            let n_present = parsed.iter().filter(|p| p.is_some()).count();
            let n_non_missing = raw.iter().filter(|s| !is_missing(s)).count();
            if n_present == n_non_missing && n_present > 0 {
                Some(parsed.iter().map(|p| p.unwrap_or(f64::NAN)).collect())
            } else {
                None
            }
        };

        if let Some(values) = numeric {
            // Fit the discretizer on non-missing values only.
            let present: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
            let present_labels: Vec<ClassId> = values
                .iter()
                .zip(class_ids.iter())
                .filter(|(v, _)| !v.is_nan())
                .map(|(_, &c)| c)
                .collect();
            let disc = Discretizer::fit(&present, &present_labels, options.discretize);
            let has_missing = values.iter().any(|v| v.is_nan());
            let mut value_names = disc.bin_labels();
            if has_missing {
                value_names.push("?".to_string());
            }
            let missing_bin = disc.n_bins();
            let encoded: Vec<usize> = values
                .iter()
                .map(|&v| if v.is_nan() { missing_bin } else { disc.bin(v) })
                .collect();
            attributes.push(Attribute::new(column_names[col].clone(), value_names));
            encoded_columns.push(encoded);
        } else {
            let mut value_names: Vec<String> = Vec::new();
            let mut encoded = Vec::with_capacity(raw.len());
            for s in &raw {
                let token = if is_missing(s) { "?" } else { s.as_str() };
                let idx = match value_names.iter().position(|v| v == token) {
                    Some(i) => i,
                    None => {
                        value_names.push(token.to_string());
                        value_names.len() - 1
                    }
                };
                encoded.push(idx);
            }
            attributes.push(Attribute::new(column_names[col].clone(), value_names));
            encoded_columns.push(encoded);
        }
    }

    let classes = class_names;
    let schema = Schema::new(attributes, classes)?;
    let mut records = Vec::with_capacity(rows.len());
    for row_idx in 0..rows.len() {
        let mut items = Vec::with_capacity(attribute_columns.len());
        for (attr_idx, column) in encoded_columns.iter().enumerate() {
            items.push(schema.item_id(attr_idx, column[row_idx])?);
        }
        records.push(Record::new(items, class_ids[row_idx]));
    }
    Dataset::new(schema, records)
}

/// Parses CSV text into a [`Dataset`].
pub fn load_csv_str(text: &str, options: &LoadOptions) -> Result<Dataset, DataError> {
    load_csv_reader(text.as_bytes(), options)
}

/// Loads a CSV file from disk (buffered and streaming).
pub fn load_csv_file(path: impl AsRef<Path>, options: &LoadOptions) -> Result<Dataset, DataError> {
    let file = std::fs::File::open(path)?;
    load_csv_reader(std::io::BufReader::new(file), options)
}

/// Quotes a field for CSV output when it contains the separator, a quote, a
/// line break, or leading/trailing whitespace.
fn csv_field(value: &str, separator: char) -> String {
    let needs_quotes = value.contains(separator)
        || value.contains('"')
        || value.contains('\n')
        || value.contains('\r')
        || value != value.trim();
    if needs_quotes {
        format!("\"{}\"", value.replace('"', "\"\""))
    } else {
        value.to_string()
    }
}

/// Renders a columnar dataset back to CSV with the schema's attribute, value
/// and class names; the class label is the last column, named `class`.
///
/// Loading the result with [`load_csv_str`] and default options reconstructs
/// a dataset with the same per-item supports (value and class *indices* may
/// be renumbered in first-seen order; names are preserved).  Note that purely
/// numeric categorical value names would be re-discretized on load.
///
/// # Panics
///
/// Panics when the dataset carries no schema (basket data); use
/// [`dataset_to_baskets`] for those.
pub fn dataset_to_csv(dataset: &Dataset) -> String {
    let schema = dataset
        .schema()
        .expect("CSV export needs columnar data; use dataset_to_baskets for basket datasets");
    let separator = ',';
    let mut out = String::new();
    let header: Vec<String> = schema
        .attributes()
        .iter()
        .map(|a| csv_field(&a.name, separator))
        .chain(std::iter::once("class".to_string()))
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for record in dataset.records() {
        let mut cells = Vec::with_capacity(schema.n_attributes() + 1);
        for &item in record.items() {
            cells.push(csv_field(&schema.describe_value(item), separator));
        }
        cells.push(csv_field(
            schema.class_name(record.class()).unwrap_or("?"),
            separator,
        ));
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Which reader a file goes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InputFormat {
    /// Delimited rows: one record per row, one column per attribute
    /// ([`load_csv_reader`]).
    #[default]
    Rows,
    /// Transactions: one basket of item tokens per line
    /// ([`load_baskets_reader`]).
    Basket,
}

impl InputFormat {
    /// Parses a CLI-style name (`rows`/`csv` or `basket`/`baskets`/
    /// `transactions`).
    pub fn parse(name: &str) -> Option<InputFormat> {
        match name.to_ascii_lowercase().as_str() {
            "rows" | "row" | "csv" | "tabular" => Some(InputFormat::Rows),
            "basket" | "baskets" | "transactions" | "transaction" => Some(InputFormat::Basket),
            _ => None,
        }
    }

    /// Display name.
    pub fn label(&self) -> &'static str {
        match self {
            InputFormat::Rows => "rows",
            InputFormat::Basket => "basket",
        }
    }
}

/// Guesses the [`InputFormat`] of a file with the default [`BasketOptions`];
/// see [`detect_format_with`].
pub fn detect_format(path: impl AsRef<Path>) -> Result<InputFormat, DataError> {
    detect_format_with(path, &BasketOptions::default())
}

/// Guesses the [`InputFormat`] of a file, deterministically: first by
/// extension (`.csv`/`.tsv`/`.data` → rows; `.basket`/`.baskets`/`.dat` →
/// basket), then — for unknown extensions — by sniffing the first non-blank,
/// non-comment line: a line containing a label token (per the given
/// [`BasketOptions`], `label:` by default) reads as a basket, anything else
/// as rows.
pub fn detect_format_with(
    path: impl AsRef<Path>,
    options: &BasketOptions,
) -> Result<InputFormat, DataError> {
    let path = path.as_ref();
    match path
        .extension()
        .and_then(|e| e.to_str())
        .map(|e| e.to_ascii_lowercase())
        .as_deref()
    {
        Some("csv" | "tsv" | "data" | "test") => return Ok(InputFormat::Rows),
        Some("basket" | "baskets" | "dat" | "tx") => return Ok(InputFormat::Basket),
        _ => {}
    }
    let file = std::fs::File::open(path)?;
    for line in std::io::BufReader::new(file).lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || options.is_comment(trimmed) {
            continue;
        }
        let has_label =
            basket_tokens(trimmed).any(|t| t.strip_prefix(options.label_prefix.as_str()).is_some());
        return Ok(if has_label {
            InputFormat::Basket
        } else {
            InputFormat::Rows
        });
    }
    Ok(InputFormat::Rows)
}

/// Options controlling basket (transaction) file parsing.
///
/// The format is one transaction per line: item tokens separated by
/// whitespace and/or commas.  A token starting with
/// [`BasketOptions::label_prefix`] (default `label:`) names the transaction's
/// class; transactions without one take [`BasketOptions::default_class`] when
/// set and are an error otherwise.  Lines starting with
/// [`BasketOptions::comment_prefix`] are skipped.
#[derive(Debug, Clone)]
pub struct BasketOptions {
    /// Prefix marking the class token of a transaction (default `label:`).
    pub label_prefix: String,
    /// Class assigned to transactions that carry no label token; `None`
    /// makes an unlabelled transaction a parse error.
    pub default_class: Option<String>,
    /// Lines starting with this prefix are skipped (default `Some('#')`).
    pub comment_prefix: Option<char>,
}

impl Default for BasketOptions {
    fn default() -> Self {
        BasketOptions {
            label_prefix: "label:".to_string(),
            default_class: None,
            comment_prefix: Some('#'),
        }
    }
}

impl BasketOptions {
    /// Sets the class assigned to transactions without a label token.
    pub fn with_default_class(mut self, class: impl Into<String>) -> Self {
        self.default_class = Some(class.into());
        self
    }

    fn is_comment(&self, trimmed_line: &str) -> bool {
        self.comment_prefix
            .is_some_and(|p| trimmed_line.starts_with(p))
    }
}

/// A non-fatal problem encountered while loading a basket file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadWarning {
    /// Line number (1-based) the warning refers to.
    pub line: usize,
    /// What happened.
    pub message: String,
}

impl std::fmt::Display for LoadWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

/// The outcome of loading a basket file: the dataset plus any line-level
/// warnings (blank lines skipped, empty transactions).
#[derive(Debug, Clone)]
pub struct BasketLoad {
    /// The loaded dataset (basket [`ItemSpace`], no schema).
    pub dataset: Dataset,
    /// Non-fatal problems, in line order.
    pub warnings: Vec<LoadWarning>,
}

/// Splits one basket line into item tokens (whitespace- and/or
/// comma-separated; empty tokens are dropped).
fn basket_tokens(line: &str) -> impl Iterator<Item = &str> {
    line.split(|c: char| c == ',' || c.is_whitespace())
        .map(str::trim)
        .filter(|t| !t.is_empty())
}

/// Parses a transaction (market-basket) dataset from any buffered reader:
/// one basket per line.
///
/// * Items are tokens separated by whitespace and/or commas and are interned
///   into a basket [`ItemSpace`] in first-seen order.
/// * A token starting with the label prefix (`label:` by default) names the
///   transaction's class; two *different* label tokens on one line are a
///   parse error.
/// * Duplicate items within one transaction are collapsed deterministically —
///   the item counts once towards the basket's supports.
/// * Blank or whitespace-only lines are skipped with a line-numbered
///   [`LoadWarning`] instead of erroring; a transaction whose only token is
///   its label is kept (it still carries a class) with a warning.
pub fn load_baskets_reader<R: BufRead>(
    reader: R,
    options: &BasketOptions,
) -> Result<BasketLoad, DataError> {
    let mut tokens: Vec<String> = Vec::new();
    let mut token_ids: HashMap<String, ItemId> = HashMap::new();
    let mut classes: Vec<String> = Vec::new();
    let mut class_ids: HashMap<String, ClassId> = HashMap::new();
    let mut records: Vec<Record> = Vec::new();
    let mut warnings: Vec<LoadWarning> = Vec::new();

    let mut intern_class = |name: &str, classes: &mut Vec<String>| -> ClassId {
        *class_ids.entry(name.to_string()).or_insert_with(|| {
            classes.push(name.to_string());
            (classes.len() - 1) as ClassId
        })
    };

    let mut any_line = false;
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        any_line = true;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            warnings.push(LoadWarning {
                line: line_no,
                message: "blank line skipped".to_string(),
            });
            continue;
        }
        if options.is_comment(trimmed) {
            continue;
        }

        let mut label: Option<&str> = None;
        let mut items: Vec<ItemId> = Vec::new();
        for token in basket_tokens(trimmed) {
            if let Some(class) = token.strip_prefix(options.label_prefix.as_str()) {
                if class.is_empty() {
                    return Err(DataError::Parse {
                        line: line_no,
                        reason: format!("empty class label token {token:?}"),
                    });
                }
                match label {
                    Some(previous) if previous != class => {
                        return Err(DataError::Parse {
                            line: line_no,
                            reason: format!(
                                "conflicting class labels {previous:?} and {class:?} in one transaction"
                            ),
                        });
                    }
                    _ => label = Some(class),
                }
            } else {
                let next_id = tokens.len() as ItemId;
                let id = *token_ids.entry(token.to_string()).or_insert_with(|| {
                    tokens.push(token.to_string());
                    next_id
                });
                items.push(id);
            }
        }

        let class_name = match (label, &options.default_class) {
            (Some(label), _) => label,
            (None, Some(default)) => default.as_str(),
            (None, None) => {
                return Err(DataError::Parse {
                    line: line_no,
                    reason: format!(
                        "transaction has no {}<class> token and no default class is configured",
                        options.label_prefix
                    ),
                })
            }
        };
        if items.is_empty() {
            warnings.push(LoadWarning {
                line: line_no,
                message: "transaction has no items".to_string(),
            });
        }
        let class = intern_class(class_name, &mut classes);
        // Record::new sorts and dedups, collapsing repeated items.
        records.push(Record::new(items, class));
    }

    if !any_line || records.is_empty() {
        return Err(DataError::Parse {
            line: 1,
            reason: "no transactions in input".to_string(),
        });
    }
    if classes.len() < 2 {
        return Err(DataError::invalid_schema(
            "basket data has fewer than two distinct class labels",
        ));
    }
    let item_space = ItemSpace::baskets(tokens, classes)?;
    let dataset = Dataset::from_baskets(item_space, records)?;
    Ok(BasketLoad { dataset, warnings })
}

/// Parses basket text into a [`BasketLoad`].
pub fn load_baskets_str(text: &str, options: &BasketOptions) -> Result<BasketLoad, DataError> {
    load_baskets_reader(text.as_bytes(), options)
}

/// Loads a basket file from disk (buffered and streaming).
pub fn load_baskets_file(
    path: impl AsRef<Path>,
    options: &BasketOptions,
) -> Result<BasketLoad, DataError> {
    let file = std::fs::File::open(path)?;
    load_baskets_reader(std::io::BufReader::new(file), options)
}

/// Renders any dataset as basket lines: each record's item names as tokens
/// plus a `label:<class>` token, one transaction per line.
///
/// The textual format has no quoting, so a token must not contain the
/// separators (whitespace, commas): any run of them inside an item or class
/// name is replaced by a single `_`.  Typical attribute datasets re-encode
/// verbatim (`attribute=value` names are separator-free); names that needed
/// mangling still re-load as *one* item each, but two names that differ only
/// in separator placement would collide.
pub fn dataset_to_baskets(dataset: &Dataset) -> String {
    let space = dataset.item_space();
    let mut out = String::new();
    for record in dataset.records() {
        let mut line: Vec<String> = record
            .items()
            .iter()
            .map(|&i| basket_token(&space.describe_item(i)))
            .collect();
        line.push(format!(
            "label:{}",
            basket_token(space.class_name(record.class()).unwrap_or("?"))
        ));
        out.push_str(&line.join(" "));
        out.push('\n');
    }
    out
}

/// Collapses every run of basket separators (whitespace, commas) inside a
/// name into one `_`, so the name survives as a single token.
fn basket_token(name: &str) -> String {
    if !name.contains(|c: char| c == ',' || c.is_whitespace()) {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len());
    let mut in_separator = false;
    for c in name.chars() {
        if c == ',' || c.is_whitespace() {
            if !in_separator {
                out.push('_');
                in_separator = true;
            }
        } else {
            out.push(c);
            in_separator = false;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
age,color,outcome
23,red,yes
31,blue,no
45,red,yes
52,blue,no
29,green,yes
61,red,no
47,green,yes
38,blue,no
";

    #[test]
    fn loads_mixed_numeric_and_categorical_columns() {
        let d = load_csv_str(SAMPLE, &LoadOptions::default()).unwrap();
        assert_eq!(d.n_records(), 8);
        assert_eq!(d.n_classes(), 2);
        assert_eq!(d.schema().unwrap().n_attributes(), 2);
        assert_eq!(d.schema().unwrap().attributes()[0].name, "age");
        assert_eq!(d.schema().unwrap().attributes()[1].name, "color");
        // color has three categories
        assert_eq!(d.schema().unwrap().attributes()[1].cardinality(), 3);
        // classes preserve first-seen order
        assert_eq!(
            d.schema().unwrap().classes(),
            &["yes".to_string(), "no".to_string()]
        );
    }

    #[test]
    fn no_header_and_custom_separator() {
        let text = "1;a;x\n2;b;y\n3;a;x\n";
        let opts = LoadOptions {
            separator: ';',
            has_header: false,
            ..LoadOptions::default()
        };
        let d = load_csv_str(text, &opts).unwrap();
        assert_eq!(d.n_records(), 3);
        assert_eq!(d.schema().unwrap().attributes()[0].name, "A0");
        assert_eq!(d.n_classes(), 2);
    }

    #[test]
    fn tsv_options() {
        let text = "a\tb\tcls\n1\tu\tx\n2\tv\ty\n";
        let d = load_csv_str(text, &LoadOptions::tsv()).unwrap();
        assert_eq!(d.n_records(), 2);
        assert_eq!(d.schema().unwrap().attributes()[1].name, "b");
    }

    #[test]
    fn missing_values_get_their_own_category() {
        let text = "a,b,cls\n1,?,x\n2,u,y\n3,v,x\n4,u,y\n";
        let d = load_csv_str(text, &LoadOptions::default()).unwrap();
        let b = &d.schema().unwrap().attributes()[1];
        assert!(b.values.contains(&"?".to_string()));
    }

    #[test]
    fn class_column_override() {
        let text = "cls,a\nx,1\ny,2\nx,3\n";
        let opts = LoadOptions {
            class_column: Some(0),
            ..LoadOptions::default()
        };
        let d = load_csv_str(text, &opts).unwrap();
        assert_eq!(d.schema().unwrap().n_attributes(), 1);
        assert_eq!(d.schema().unwrap().classes().len(), 2);
    }

    #[test]
    fn class_column_by_name() {
        let text = "cls,a\nx,1\ny,2\nx,3\n";
        let opts = LoadOptions::default().with_class_name("cls");
        let d = load_csv_str(text, &opts).unwrap();
        assert_eq!(d.schema().unwrap().n_attributes(), 1);
        assert_eq!(d.schema().unwrap().attributes()[0].name, "a");

        let missing = LoadOptions::default().with_class_name("nope");
        let err = load_csv_str(text, &missing).unwrap_err();
        assert!(matches!(err, DataError::UnknownColumn { .. }));
        assert!(err.to_string().contains("nope"));
        assert!(err.to_string().contains("cls"));

        // By-name selection needs a header to resolve against.
        let headerless = LoadOptions {
            has_header: false,
            ..LoadOptions::default().with_class_name("cls")
        };
        assert!(load_csv_str(text, &headerless).is_err());
    }

    #[test]
    fn quoted_fields() {
        let text = "name,note,cls\nalpha,\"a, quoted\",x\nbeta,\"say \"\"hi\"\"\",y\n gamma , \"padded\" ,x\n";
        let d = load_csv_str(text, &LoadOptions::default()).unwrap();
        assert_eq!(d.n_records(), 3);
        let note = &d.schema().unwrap().attributes()[1];
        assert!(note.values.contains(&"a, quoted".to_string()));
        assert!(note.values.contains(&"say \"hi\"".to_string()));
        assert!(note.values.contains(&"padded".to_string()));
        // unquoted fields are still trimmed
        let name = &d.schema().unwrap().attributes()[0];
        assert!(name.values.contains(&"gamma".to_string()));
    }

    #[test]
    fn quoted_field_spanning_lines() {
        let text = "a,cls\n\"line\nbreak\",x\nplain,y\n";
        let d = load_csv_str(text, &LoadOptions::default()).unwrap();
        assert_eq!(d.n_records(), 2);
        assert!(d.schema().unwrap().attributes()[0]
            .values
            .contains(&"line\nbreak".to_string()));
    }

    #[test]
    fn unterminated_quote_is_a_parse_error() {
        let text = "a,cls\n\"never closed,x\n";
        let err = load_csv_str(text, &LoadOptions::default()).unwrap_err();
        assert!(matches!(err, DataError::Parse { .. }));
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn garbage_after_closing_quote_is_a_parse_error() {
        let text = "a,cls\n\"ok\"junk,x\n\"fine\",y\n";
        let err = load_csv_str(text, &LoadOptions::default()).unwrap_err();
        assert!(matches!(err, DataError::Parse { line: 2, .. }));
    }

    #[test]
    fn quote_handling_can_be_disabled() {
        let text = "a,cls\n\"raw,x\n\"other,y\n";
        let opts = LoadOptions {
            quote: None,
            ..LoadOptions::default()
        };
        let d = load_csv_str(text, &opts).unwrap();
        assert!(d.schema().unwrap().attributes()[0]
            .values
            .contains(&"\"raw".to_string()));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(load_csv_str("", &LoadOptions::default()).is_err());
        assert!(load_csv_str("only_header\n", &LoadOptions::default()).is_err());
        // ragged rows
        let text = "a,b,cls\n1,2,x\n1,y\n";
        assert!(load_csv_str(text, &LoadOptions::default()).is_err());
        // single class label
        let text = "a,cls\n1,x\n2,x\n";
        assert!(load_csv_str(text, &LoadOptions::default()).is_err());
        // class column out of range
        let opts = LoadOptions {
            class_column: Some(9),
            ..LoadOptions::default()
        };
        assert!(load_csv_str("a,b\n1,x\n2,y\n", &opts).is_err());
    }

    #[test]
    fn header_width_must_match_the_data_rows() {
        // Wider data than header: previously panicked (indexing past the
        // header) or silently misaligned the column names.
        let err = load_csv_str("cls,a\nx,1,2\ny,3,4\n", &LoadOptions::default()).unwrap_err();
        assert!(matches!(err, DataError::Parse { line: 1, .. }));
        assert!(err.to_string().contains("header has 2 columns"));
        let opts = LoadOptions {
            class_column: Some(0),
            ..LoadOptions::default()
        };
        assert!(load_csv_str("cls,a\nx,1,2\ny,3,4\n", &opts).is_err());
        // Narrower data than header.
        let err = load_csv_str("a,b,cls\n1,x\n2,y\n", &LoadOptions::default()).unwrap_err();
        assert!(matches!(err, DataError::Parse { line: 1, .. }));
    }

    #[test]
    fn parse_error_reports_line_number() {
        let text = "a,b,cls\n1,2,x\n3,4,y\n5,z\n";
        match load_csv_str(text, &LoadOptions::default()).unwrap_err() {
            DataError::Parse { line, reason } => {
                assert_eq!(line, 4);
                assert!(reason.contains("expected 3 columns"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join("sigrule_loader_test.csv");
        std::fs::write(&path, SAMPLE).unwrap();
        let d = load_csv_file(&path, &LoadOptions::default()).unwrap();
        assert_eq!(d.n_records(), 8);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_csv_file("/nonexistent/sigrule.csv", &LoadOptions::default()).unwrap_err();
        assert!(matches!(err, DataError::Io { .. }));
    }

    #[test]
    fn export_then_load_preserves_counts_and_names() {
        let d = load_csv_str(
            "x,cls\nred,a\nblue,b\nred,a\n\"c,d\",b\n",
            &LoadOptions::default(),
        )
        .unwrap();
        let csv = dataset_to_csv(&d);
        assert!(csv.starts_with("x,class\n"));
        assert!(csv.contains("\"c,d\""));
        let back = load_csv_str(&csv, &LoadOptions::default()).unwrap();
        assert_eq!(back.n_records(), d.n_records());
        assert_eq!(back.n_classes(), d.n_classes());
        assert_eq!(
            back.schema().unwrap().attributes()[0].values,
            d.schema().unwrap().attributes()[0].values
        );
    }

    const BASKETS: &str = "\
# toy transactions
milk bread label:weekday
milk, beer, label:weekend
bread eggs milk label:weekday
beer label:weekend
";

    #[test]
    fn loads_basket_transactions() {
        let load = load_baskets_str(BASKETS, &BasketOptions::default()).unwrap();
        let d = &load.dataset;
        assert!(load.warnings.is_empty());
        assert_eq!(d.n_records(), 4);
        assert!(d.schema().is_none());
        assert!(d.item_space().is_basket());
        // tokens interned in first-seen order
        let space = d.item_space();
        assert_eq!(space.describe_item(0), "milk");
        assert_eq!(space.describe_item(1), "bread");
        assert_eq!(space.describe_item(2), "beer");
        assert_eq!(space.describe_item(3), "eggs");
        assert_eq!(d.item_support(0), 3); // milk
        assert_eq!(d.item_support(2), 2); // beer
        assert_eq!(
            space.classes(),
            &["weekday".to_string(), "weekend".to_string()]
        );
        let counts = d.class_counts();
        assert_eq!(counts.count(0), 2);
        assert_eq!(counts.count(1), 2);
    }

    #[test]
    fn blank_basket_lines_warn_instead_of_erroring() {
        let text = "a b label:x\n\n   \nc label:y\n";
        let load = load_baskets_str(text, &BasketOptions::default()).unwrap();
        assert_eq!(load.dataset.n_records(), 2);
        assert_eq!(
            load.warnings,
            vec![
                LoadWarning {
                    line: 2,
                    message: "blank line skipped".into()
                },
                LoadWarning {
                    line: 3,
                    message: "blank line skipped".into()
                },
            ]
        );
        assert!(load.warnings[0].to_string().contains("line 2"));
    }

    #[test]
    fn duplicate_items_in_one_transaction_count_once() {
        let text = "a a b a label:x\nb label:y\n";
        let load = load_baskets_str(text, &BasketOptions::default()).unwrap();
        let d = &load.dataset;
        assert_eq!(d.records()[0].items(), &[0, 1]);
        assert_eq!(d.item_support(0), 1);
    }

    #[test]
    fn unlabelled_transactions_need_a_default_class() {
        let text = "a b\nc label:y\n";
        let err = load_baskets_str(text, &BasketOptions::default()).unwrap_err();
        assert!(matches!(err, DataError::Parse { line: 1, .. }));

        let opts = BasketOptions::default().with_default_class("x");
        let load = load_baskets_str(text, &opts).unwrap();
        assert_eq!(load.dataset.n_records(), 2);
        assert_eq!(load.dataset.item_space().classes()[0], "x");
    }

    #[test]
    fn conflicting_labels_are_a_parse_error() {
        let text = "a label:x label:y\n";
        let err = load_baskets_str(text, &BasketOptions::default()).unwrap_err();
        match err {
            DataError::Parse { line, reason } => {
                assert_eq!(line, 1);
                assert!(reason.contains("conflicting"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        // the same label twice is fine
        let ok = load_baskets_str("a label:x label:x\nb label:y\n", &BasketOptions::default());
        assert!(ok.is_ok());
        // an empty label token is rejected
        let err = load_baskets_str("a label:\nb label:y\n", &BasketOptions::default()).unwrap_err();
        assert!(matches!(err, DataError::Parse { line: 1, .. }));
    }

    #[test]
    fn label_only_transaction_is_kept_with_a_warning() {
        let text = "label:x\na label:y\n";
        let load = load_baskets_str(text, &BasketOptions::default()).unwrap();
        assert_eq!(load.dataset.n_records(), 2);
        assert!(load.dataset.records()[0].is_empty());
        assert_eq!(load.warnings.len(), 1);
        assert!(load.warnings[0].message.contains("no items"));
    }

    #[test]
    fn degenerate_basket_inputs_error() {
        assert!(load_baskets_str("", &BasketOptions::default()).is_err());
        assert!(load_baskets_str("# only a comment\n", &BasketOptions::default()).is_err());
        // single class
        let err = load_baskets_str("a label:x\nb label:x\n", &BasketOptions::default());
        assert!(matches!(err, Err(DataError::InvalidSchema { .. })));
    }

    #[test]
    fn basket_export_mangles_separator_names_into_single_tokens() {
        // An attribute value containing a comma and spaces (quoted CSV)
        // must not split into several items on re-load.
        let d = load_csv_str(
            "note,cls\n\"a, quoted\",x\nplain,y\n\"a, quoted\",x\n",
            &LoadOptions::default(),
        )
        .unwrap();
        let text = dataset_to_baskets(&d);
        assert!(text.contains("note=a_quoted"));
        let back = load_baskets_str(&text, &BasketOptions::default()).unwrap();
        assert_eq!(back.dataset.n_records(), 3);
        let item = back
            .dataset
            .item_space()
            .item_named("note=a_quoted")
            .expect("mangled name is one token");
        assert_eq!(back.dataset.item_support(item), 2);
    }

    #[test]
    fn detect_format_honours_custom_label_prefix() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("sigrule_detect_{}_c.txt", std::process::id()));
        std::fs::write(&path, "milk bread class:yes\n").unwrap();
        // default prefix sees no label token → rows
        assert_eq!(detect_format(&path).unwrap(), InputFormat::Rows);
        let opts = BasketOptions {
            label_prefix: "class:".to_string(),
            ..BasketOptions::default()
        };
        assert_eq!(
            detect_format_with(&path, &opts).unwrap(),
            InputFormat::Basket
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn basket_export_round_trips_supports() {
        let load = load_baskets_str(BASKETS, &BasketOptions::default()).unwrap();
        let text = dataset_to_baskets(&load.dataset);
        let back = load_baskets_str(&text, &BasketOptions::default()).unwrap();
        assert_eq!(back.dataset, load.dataset);
    }

    #[test]
    fn basket_file_round_trip_and_missing_file() {
        let path = std::env::temp_dir().join(format!(
            "sigrule_basket_loader_{}.basket",
            std::process::id()
        ));
        std::fs::write(&path, BASKETS).unwrap();
        let load = load_baskets_file(&path, &BasketOptions::default()).unwrap();
        assert_eq!(load.dataset.n_records(), 4);
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            load_baskets_file("/nonexistent/x.basket", &BasketOptions::default()),
            Err(DataError::Io { .. })
        ));
    }

    #[test]
    fn input_format_parse_and_labels() {
        assert_eq!(InputFormat::parse("rows"), Some(InputFormat::Rows));
        assert_eq!(InputFormat::parse("CSV"), Some(InputFormat::Rows));
        assert_eq!(InputFormat::parse("basket"), Some(InputFormat::Basket));
        assert_eq!(
            InputFormat::parse("transactions"),
            Some(InputFormat::Basket)
        );
        assert_eq!(InputFormat::parse("nope"), None);
        assert_eq!(InputFormat::Rows.label(), "rows");
        assert_eq!(InputFormat::Basket.label(), "basket");
    }

    #[test]
    fn detect_format_by_extension_and_content() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();

        let csv = dir.join(format!("sigrule_detect_{pid}.csv"));
        std::fs::write(&csv, "a,cls\n1,x\n").unwrap();
        assert_eq!(detect_format(&csv).unwrap(), InputFormat::Rows);

        let basket = dir.join(format!("sigrule_detect_{pid}.basket"));
        std::fs::write(&basket, "a b label:x\n").unwrap();
        assert_eq!(detect_format(&basket).unwrap(), InputFormat::Basket);

        // unknown extension: sniff the first data line
        let sniff_basket = dir.join(format!("sigrule_detect_{pid}_b.txt"));
        std::fs::write(&sniff_basket, "# comment\n\nmilk bread label:yes\n").unwrap();
        assert_eq!(detect_format(&sniff_basket).unwrap(), InputFormat::Basket);

        let sniff_rows = dir.join(format!("sigrule_detect_{pid}_r.txt"));
        std::fs::write(&sniff_rows, "a,b,cls\n1,2,x\n").unwrap();
        assert_eq!(detect_format(&sniff_rows).unwrap(), InputFormat::Rows);

        for p in [csv, basket, sniff_basket, sniff_rows] {
            std::fs::remove_file(p).ok();
        }
        assert!(detect_format("/nonexistent/sigrule.unknown").is_err());
    }
}
