//! Error type for dataset construction and loading.

use std::fmt;

/// Errors produced while building, validating or loading datasets.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// A record referenced an attribute index that does not exist in the
    /// schema.
    UnknownAttribute {
        /// The offending attribute index.
        index: usize,
    },
    /// A record referenced a value index outside the attribute's domain.
    UnknownValue {
        /// Attribute index.
        attribute: usize,
        /// The offending value index.
        value: usize,
    },
    /// A record referenced a class label index outside the schema's class
    /// domain.
    UnknownClass {
        /// The offending class index.
        class: usize,
    },
    /// A record referenced an item id outside its item space.
    UnknownItem {
        /// The offending item id.
        item: usize,
        /// Number of items in the item space.
        n_items: usize,
    },
    /// A record did not provide exactly one value per attribute.
    WrongArity {
        /// Number of items the record carried.
        got: usize,
        /// Number of attributes in the schema.
        expected: usize,
    },
    /// The schema is structurally invalid (no attributes, no classes, an
    /// attribute with no values, duplicate names, ...).
    InvalidSchema {
        /// Human-readable description.
        reason: String,
    },
    /// A column was selected by name but the header does not contain it.
    UnknownColumn {
        /// The requested column name.
        name: String,
        /// The column names the header actually provides.
        available: Vec<String>,
    },
    /// A parse error while loading an external file.
    Parse {
        /// Line number (1-based) where the error occurred.
        line: usize,
        /// Human-readable description.
        reason: String,
    },
    /// An I/O error while loading an external file.
    Io {
        /// Stringified source error (kept as a string so the error stays
        /// `Clone` and `PartialEq`).
        message: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::UnknownAttribute { index } => write!(f, "unknown attribute index {index}"),
            DataError::UnknownValue { attribute, value } => {
                write!(f, "unknown value {value} for attribute {attribute}")
            }
            DataError::UnknownClass { class } => write!(f, "unknown class index {class}"),
            DataError::UnknownItem { item, n_items } => {
                write!(f, "unknown item id {item} (the item space has {n_items})")
            }
            DataError::WrongArity { got, expected } => {
                write!(
                    f,
                    "record has {got} items but the schema has {expected} attributes"
                )
            }
            DataError::InvalidSchema { reason } => write!(f, "invalid schema: {reason}"),
            DataError::UnknownColumn { name, available } => {
                write!(
                    f,
                    "no column named {name:?}; the header has: {}",
                    available.join(", ")
                )
            }
            DataError::Parse { line, reason } => write!(f, "parse error at line {line}: {reason}"),
            DataError::Io { message } => write!(f, "i/o error: {message}"),
        }
    }
}

impl std::error::Error for DataError {}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io {
            message: e.to_string(),
        }
    }
}

impl DataError {
    /// Convenience constructor for [`DataError::InvalidSchema`].
    pub fn invalid_schema(reason: impl Into<String>) -> Self {
        DataError::InvalidSchema {
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(DataError::UnknownAttribute { index: 3 }
            .to_string()
            .contains('3'));
        assert!(DataError::UnknownValue {
            attribute: 1,
            value: 9
        }
        .to_string()
        .contains('9'));
        assert!(DataError::UnknownClass { class: 2 }
            .to_string()
            .contains('2'));
        let unknown_item = DataError::UnknownItem {
            item: 9,
            n_items: 4,
        };
        assert!(unknown_item.to_string().contains("item id 9"));
        assert!(unknown_item.to_string().contains('4'));
        assert!(DataError::WrongArity {
            got: 4,
            expected: 5
        }
        .to_string()
        .contains('5'));
        assert!(DataError::invalid_schema("no attributes")
            .to_string()
            .contains("no attributes"));
        assert!(DataError::Parse {
            line: 7,
            reason: "bad".into()
        }
        .to_string()
        .contains("line 7"));
        let unknown = DataError::UnknownColumn {
            name: "label".into(),
            available: vec!["a".into(), "b".into()],
        };
        assert!(unknown.to_string().contains("label"));
        assert!(unknown.to_string().contains("a, b"));
    }

    #[test]
    fn from_io_error() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: DataError = io.into();
        assert!(e.to_string().contains("nope"));
    }
}
