//! Frequent and closed pattern mining.
//!
//! The paper (§3) maps every attribute/value pair to an item and runs an
//! existing frequent pattern miner; the correction machinery is agnostic to
//! which one.  This crate provides three interchangeable miners plus the
//! pattern-forest representation the permutation engine needs:
//!
//! * [`apriori`] — the classic level-wise algorithm (Agrawal et al.), used as
//!   a baseline and as an independent oracle in the cross-validation tests;
//! * [`eclat`] — a vertical depth-first miner over the set-enumeration tree
//!   (Rymon) that produces a [`PatternForest`](forest::PatternForest) with
//!   parent links and Diffset-encoded covers (Zaki & Gouda), exactly the
//!   structure §4.2.1–4.2.2 of the paper requires;
//! * [`fpgrowth`] — FP-growth (Han et al.) over an FP-tree, the fastest of
//!   the three for dense data;
//! * [`closed`] — closed-pattern identification (Pasquier et al.), since the
//!   paper generates one rule per *closed* frequent pattern to avoid testing
//!   duplicated hypotheses.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod apriori;
pub mod closed;
pub mod eclat;
pub mod forest;
pub mod fpgrowth;
pub mod miner;

pub use apriori::AprioriMiner;
pub use closed::closed_flags;
pub use eclat::EclatMiner;
pub use forest::{PatternForest, PatternNode, SupportBackend, SupportPlan};
pub use fpgrowth::FpGrowthMiner;
pub use miner::{FrequentPattern, FrequentPatternMiner, MinerConfig, MinerKind};
