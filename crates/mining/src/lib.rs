//! Frequent and closed pattern mining.
//!
//! The paper (§3) maps every attribute/value pair to an item and runs an
//! existing frequent pattern miner; the correction machinery is agnostic to
//! which one.  This crate provides three interchangeable miners plus the
//! pattern-forest representation the permutation engine needs:
//!
//! * [`apriori`] — the classic level-wise algorithm (Agrawal et al.), used as
//!   a baseline and as an independent oracle in the cross-validation tests;
//! * [`eclat`] — a vertical depth-first miner over the set-enumeration tree
//!   (Rymon) that produces a [`PatternForest`] with
//!   parent links and Diffset-encoded covers (Zaki & Gouda), exactly the
//!   structure §4.2.1–4.2.2 of the paper requires;
//! * [`fpgrowth`] — FP-growth (Han et al.) over an FP-tree, the fastest of
//!   the three for dense data;
//! * [`closed`] — closed-pattern identification (Pasquier et al.), since the
//!   paper generates one rule per *closed* frequent pattern to avoid testing
//!   duplicated hypotheses.
//!
//! # Example: mine frequent patterns
//!
//! ```
//! use sigrule_data::{Dataset, Record, Schema};
//! use sigrule_mining::{EclatMiner, FrequentPatternMiner, MinerConfig};
//!
//! // Two binary attributes, two classes, four records.
//! let schema = Schema::synthetic(&[2, 2], 2).unwrap();
//! let records = vec![
//!     Record::new(vec![0, 2], 0),
//!     Record::new(vec![0, 2], 0),
//!     Record::new(vec![0, 3], 1),
//!     Record::new(vec![1, 3], 1),
//! ];
//! let dataset = Dataset::new(schema, records).unwrap();
//!
//! let patterns = EclatMiner::default().mine(&dataset, &MinerConfig::new(2));
//! // item 0 appears in three records ...
//! assert!(patterns.iter().any(|p| p.pattern.items() == [0] && p.support == 3));
//! // ... and co-occurs with item 2 twice.
//! assert!(patterns.iter().any(|p| p.pattern.items() == [0, 2] && p.support == 2));
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod apriori;
pub mod closed;
pub mod eclat;
pub mod forest;
pub mod fpgrowth;
pub mod miner;

pub use apriori::AprioriMiner;
pub use closed::closed_flags;
pub use eclat::EclatMiner;
pub use forest::{PatternForest, PatternNode, SupportBackend, SupportPlan};
pub use fpgrowth::FpGrowthMiner;
pub use miner::{FrequentPattern, FrequentPatternMiner, MinerConfig, MinerKind};
