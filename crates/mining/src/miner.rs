//! Miner configuration, the common result type and the miner trait.

use sigrule_data::{Dataset, Pattern};

/// Configuration shared by all frequent pattern miners.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinerConfig {
    /// Minimum support threshold (`min_sup` in the paper): a pattern is
    /// frequent when at least this many records contain it.
    pub min_sup: usize,
    /// Optional cap on pattern length; `None` mines unbounded lengths.
    pub max_length: Option<usize>,
}

impl MinerConfig {
    /// Creates a configuration with the given minimum support and no length
    /// cap.
    pub fn new(min_sup: usize) -> Self {
        MinerConfig {
            min_sup,
            max_length: None,
        }
    }

    /// Sets a maximum pattern length.
    pub fn with_max_length(mut self, max_length: usize) -> Self {
        self.max_length = Some(max_length);
        self
    }

    /// The effective minimum support: at least 1, since a support-0 pattern
    /// never appears in the data at all.
    pub fn effective_min_sup(&self) -> usize {
        self.min_sup.max(1)
    }

    /// True when `len` exceeds the configured maximum length.
    pub fn exceeds_max_length(&self, len: usize) -> bool {
        self.max_length.is_some_and(|m| len > m)
    }
}

/// A frequent pattern together with its support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequentPattern {
    /// The pattern (non-empty).
    pub pattern: Pattern,
    /// Its support in the mined dataset.
    pub support: usize,
}

impl FrequentPattern {
    /// Creates a frequent pattern record.
    pub fn new(pattern: Pattern, support: usize) -> Self {
        FrequentPattern { pattern, support }
    }
}

/// Common interface of the frequent pattern miners.
pub trait FrequentPatternMiner {
    /// Mines all frequent patterns (of length ≥ 1) from the dataset.
    ///
    /// Implementations must return every pattern with support at least
    /// `config.min_sup` (subject to `config.max_length`), each exactly once,
    /// in an unspecified order.
    fn mine(&self, dataset: &Dataset, config: &MinerConfig) -> Vec<FrequentPattern>;

    /// Human-readable name for reports and benchmarks.
    fn name(&self) -> &'static str;
}

/// The available miner implementations, for configuration surfaces that pick
/// one by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MinerKind {
    /// Level-wise Apriori.
    Apriori,
    /// Vertical Eclat/dEclat (the default; the only miner that produces a
    /// [`PatternForest`](crate::forest::PatternForest)).
    Eclat,
    /// FP-growth.
    FpGrowth,
}

impl MinerKind {
    /// Mines with the selected algorithm.
    pub fn mine(&self, dataset: &Dataset, config: &MinerConfig) -> Vec<FrequentPattern> {
        match self {
            MinerKind::Apriori => crate::apriori::AprioriMiner.mine(dataset, config),
            MinerKind::Eclat => crate::eclat::EclatMiner::default().mine(dataset, config),
            MinerKind::FpGrowth => crate::fpgrowth::FpGrowthMiner.mine(dataset, config),
        }
    }

    /// All miner kinds (used by the cross-validation tests and the
    /// miner-comparison benchmark).
    pub fn all() -> [MinerKind; 3] {
        [MinerKind::Apriori, MinerKind::Eclat, MinerKind::FpGrowth]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            MinerKind::Apriori => "apriori",
            MinerKind::Eclat => "eclat",
            MinerKind::FpGrowth => "fp-growth",
        }
    }
}

/// Normalises a miner result into a canonical, comparable form: sorted by
/// pattern items.  Used by tests that compare different miners.
pub fn canonicalize(mut patterns: Vec<FrequentPattern>) -> Vec<FrequentPattern> {
    patterns.sort_by(|a, b| a.pattern.items().cmp(b.pattern.items()));
    patterns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builders() {
        let c = MinerConfig::new(10).with_max_length(3);
        assert_eq!(c.min_sup, 10);
        assert_eq!(c.max_length, Some(3));
        assert!(c.exceeds_max_length(4));
        assert!(!c.exceeds_max_length(3));
        assert_eq!(MinerConfig::new(0).effective_min_sup(), 1);
    }

    #[test]
    fn canonicalize_sorts_by_pattern() {
        let a = FrequentPattern::new(Pattern::from_items([3]), 5);
        let b = FrequentPattern::new(Pattern::from_items([1, 2]), 4);
        let out = canonicalize(vec![a.clone(), b.clone()]);
        assert_eq!(out, vec![b, a]);
    }

    #[test]
    fn miner_kind_names() {
        assert_eq!(MinerKind::Apriori.name(), "apriori");
        assert_eq!(MinerKind::Eclat.name(), "eclat");
        assert_eq!(MinerKind::FpGrowth.name(), "fp-growth");
        assert_eq!(MinerKind::all().len(), 3);
    }
}
