//! The Apriori algorithm (Agrawal & Srikant): level-wise candidate generation
//! with horizontal support counting.
//!
//! Kept as the reference baseline: it is the simplest correct miner, so the
//! property tests use it as an oracle against Eclat and FP-growth, and the
//! miner-comparison benchmark measures how much the vertical miners gain.

use crate::miner::{FrequentPattern, FrequentPatternMiner, MinerConfig};
use sigrule_data::{Dataset, ItemId, Pattern};
use std::collections::{HashMap, HashSet};

/// Level-wise Apriori miner.
#[derive(Debug, Clone, Default)]
pub struct AprioriMiner;

impl AprioriMiner {
    /// Generates level-(k+1) candidates from frequent level-k patterns by
    /// joining patterns that share their first k−1 items, then prunes
    /// candidates with an infrequent k-subset.
    fn generate_candidates(frequent: &[Pattern]) -> Vec<Pattern> {
        let frequent_set: HashSet<&Pattern> = frequent.iter().collect();
        let mut candidates = Vec::new();
        for i in 0..frequent.len() {
            for j in (i + 1)..frequent.len() {
                let a = frequent[i].items();
                let b = frequent[j].items();
                let k = a.len();
                // join condition: identical prefix of length k-1
                if a[..k - 1] != b[..k - 1] {
                    continue;
                }
                let candidate = frequent[i].union(&frequent[j]);
                if candidate.len() != k + 1 {
                    continue;
                }
                // prune: every k-subset must be frequent
                let all_subsets_frequent = (0..candidate.len()).all(|drop| {
                    let subset: Pattern = candidate
                        .items()
                        .iter()
                        .enumerate()
                        .filter(|&(idx, _)| idx != drop)
                        .map(|(_, &item)| item)
                        .collect();
                    frequent_set.contains(&subset)
                });
                if all_subsets_frequent {
                    candidates.push(candidate);
                }
            }
        }
        candidates.sort_by(|a, b| a.items().cmp(b.items()));
        candidates.dedup();
        candidates
    }

    /// Counts the support of each candidate with one pass over the records.
    fn count_supports(dataset: &Dataset, candidates: &[Pattern]) -> Vec<usize> {
        let mut counts = vec![0usize; candidates.len()];
        for record in dataset.records() {
            for (i, candidate) in candidates.iter().enumerate() {
                if record.contains_pattern(candidate) {
                    counts[i] += 1;
                }
            }
        }
        counts
    }
}

impl FrequentPatternMiner for AprioriMiner {
    fn mine(&self, dataset: &Dataset, config: &MinerConfig) -> Vec<FrequentPattern> {
        let min_sup = config.effective_min_sup();
        let mut result: Vec<FrequentPattern> = Vec::new();

        // Level 1: count single items.
        let mut item_counts: HashMap<ItemId, usize> = HashMap::new();
        for record in dataset.records() {
            for &item in record.items() {
                *item_counts.entry(item).or_default() += 1;
            }
        }
        let mut current: Vec<Pattern> = item_counts
            .iter()
            .filter(|(_, &count)| count >= min_sup)
            .map(|(&item, _)| Pattern::singleton(item))
            .collect();
        current.sort_by(|a, b| a.items().cmp(b.items()));
        for p in &current {
            let support = item_counts[&p.items()[0]];
            result.push(FrequentPattern::new(p.clone(), support));
        }

        let mut level = 1usize;
        while !current.is_empty() {
            level += 1;
            if config.exceeds_max_length(level) {
                break;
            }
            let candidates = Self::generate_candidates(&current);
            if candidates.is_empty() {
                break;
            }
            let counts = Self::count_supports(dataset, &candidates);
            let mut next = Vec::new();
            for (candidate, count) in candidates.into_iter().zip(counts) {
                if count >= min_sup {
                    result.push(FrequentPattern::new(candidate.clone(), count));
                    next.push(candidate);
                }
            }
            current = next;
        }
        result
    }

    fn name(&self) -> &'static str {
        "apriori"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::canonicalize;
    use sigrule_data::{Record, Schema};

    fn toy() -> Dataset {
        let schema = Schema::synthetic(&[2, 2], 2).unwrap();
        let records = vec![
            Record::new(vec![0, 2], 0),
            Record::new(vec![0, 3], 0),
            Record::new(vec![1, 2], 1),
            Record::new(vec![0, 2], 1),
            Record::new(vec![1, 3], 0),
        ];
        Dataset::new(schema, records).unwrap()
    }

    #[test]
    fn matches_expected_patterns_at_min_sup_2() {
        let d = toy();
        let got = canonicalize(AprioriMiner.mine(&d, &MinerConfig::new(2)));
        let expected = canonicalize(vec![
            FrequentPattern::new(Pattern::from_items([0]), 3),
            FrequentPattern::new(Pattern::from_items([1]), 2),
            FrequentPattern::new(Pattern::from_items([2]), 3),
            FrequentPattern::new(Pattern::from_items([3]), 2),
            FrequentPattern::new(Pattern::from_items([0, 2]), 2),
        ]);
        assert_eq!(got, expected);
    }

    #[test]
    fn supports_are_correct_at_min_sup_1() {
        let d = toy();
        let patterns = AprioriMiner.mine(&d, &MinerConfig::new(1));
        for fp in &patterns {
            assert_eq!(fp.support, d.support(&fp.pattern), "{:?}", fp.pattern);
        }
        // All 4 singletons, 4 pairs with support>=1 ({0,2},{0,3},{1,2},{1,3}): 8 total.
        assert_eq!(patterns.len(), 8);
    }

    #[test]
    fn candidate_generation_requires_shared_prefix() {
        let frequent = vec![
            Pattern::from_items([0, 1]),
            Pattern::from_items([0, 2]),
            Pattern::from_items([1, 2]),
        ];
        let candidates = AprioriMiner::generate_candidates(&frequent);
        // join {0,1} and {0,2} → {0,1,2}; its subsets {0,1},{0,2},{1,2} are all frequent
        assert_eq!(candidates, vec![Pattern::from_items([0, 1, 2])]);
    }

    #[test]
    fn candidate_pruning_removes_unsupported_subsets() {
        let frequent = vec![Pattern::from_items([0, 1]), Pattern::from_items([0, 2])];
        // {1,2} is not frequent, so {0,1,2} must be pruned
        let candidates = AprioriMiner::generate_candidates(&frequent);
        assert!(candidates.is_empty());
    }

    #[test]
    fn max_length_respected() {
        let d = toy();
        let patterns = AprioriMiner.mine(&d, &MinerConfig::new(1).with_max_length(1));
        assert!(patterns.iter().all(|p| p.pattern.len() <= 1));
    }

    #[test]
    fn empty_result_at_impossible_support() {
        let d = toy();
        assert!(AprioriMiner.mine(&d, &MinerConfig::new(100)).is_empty());
    }
}
