//! Eclat / dEclat: vertical depth-first frequent pattern mining over the
//! set-enumeration tree.
//!
//! This is the miner the correction pipeline uses, because its depth-first
//! exploration of the set-enumeration tree (Rymon 1992) produces exactly the
//! parent-before-child [`PatternForest`] the permutation engine needs, and
//! because the Diffsets storage rule of §4.2.2 falls out of it naturally.

use crate::forest::{hash_tids, PatternForest, PatternNode};
use crate::miner::{FrequentPattern, FrequentPatternMiner, MinerConfig};
use sigrule_data::{Cover, Dataset, ItemId, Pattern, TidSet, VerticalDataset};

/// Vertical set-enumeration miner.
#[derive(Debug, Clone)]
pub struct EclatMiner {
    /// When true (the default), node covers follow the paper's Diffsets rule;
    /// when false every node stores its full tid-set.  The flag only affects
    /// the *stored* representation (and therefore the permutation-engine
    /// cost); the set of mined patterns is identical.
    pub use_diffsets: bool,
    /// When true, level-1 items are reordered by ascending support before the
    /// depth-first exploration — the standard Eclat heuristic that keeps
    /// intermediate tid-sets small.
    pub reorder_items: bool,
}

impl Default for EclatMiner {
    fn default() -> Self {
        EclatMiner {
            use_diffsets: true,
            reorder_items: true,
        }
    }
}

impl EclatMiner {
    /// A miner that stores full tid-sets everywhere (the "no Diffsets"
    /// configuration of Figure 4).
    pub fn without_diffsets() -> Self {
        EclatMiner {
            use_diffsets: false,
            reorder_items: true,
        }
    }

    /// Mines the dataset into a [`PatternForest`].
    pub fn mine_forest(&self, dataset: &Dataset, config: &MinerConfig) -> PatternForest {
        let vertical = VerticalDataset::from_dataset(dataset);
        self.mine_forest_vertical(&vertical, config)
    }

    /// Mines a pre-built vertical dataset into a [`PatternForest`].
    pub fn mine_forest_vertical(
        &self,
        vertical: &VerticalDataset,
        config: &MinerConfig,
    ) -> PatternForest {
        let min_sup = config.effective_min_sup();
        let n_records = vertical.n_records();

        // Frequent level-1 items.
        let mut items: Vec<(ItemId, TidSet)> = (0..vertical.n_items() as ItemId)
            .filter(|&i| vertical.item_support(i) >= min_sup)
            .map(|i| (i, vertical.item_tids(i).clone()))
            .collect();
        if self.reorder_items {
            items.sort_by_key(|(_, tids)| tids.len());
        }

        let mut nodes: Vec<PatternNode> = Vec::new();
        let full = TidSet::full(n_records);

        // Depth-first expansion.  `candidates` holds, for the current prefix,
        // the items that can still extend it together with the tid-set of
        // (prefix ∪ item).
        struct Frame {
            pattern: Pattern,
            tids: TidSet,
            node_index: Option<usize>,
        }

        // Recursive helper implemented iteratively-by-recursion for clarity;
        // the recursion depth is bounded by the number of attributes.
        fn expand(
            miner: &EclatMiner,
            config: &MinerConfig,
            nodes: &mut Vec<PatternNode>,
            prefix: &Frame,
            candidates: &[(ItemId, TidSet)],
        ) {
            let min_sup = config.effective_min_sup();
            for (pos, (item, tids)) in candidates.iter().enumerate() {
                let pattern = prefix.pattern.with_item(*item);
                if config.exceeds_max_length(pattern.len()) {
                    continue;
                }
                let support = tids.len();
                debug_assert!(support >= min_sup);

                let cover = if miner.use_diffsets {
                    Cover::choose(&prefix.tids, tids.clone())
                } else {
                    Cover::Tids(tids.clone())
                };
                let node = PatternNode {
                    pattern: pattern.clone(),
                    support,
                    parent: prefix.node_index,
                    cover,
                    tid_hash: hash_tids(tids),
                };
                nodes.push(node);
                let node_index = nodes.len() - 1;

                // Build the candidate list for the new prefix from the items
                // that follow `item` in the current candidate order.
                let mut next_candidates: Vec<(ItemId, TidSet)> = Vec::new();
                for (other, other_tids) in &candidates[pos + 1..] {
                    let joined = tids.intersect(other_tids);
                    if joined.len() >= min_sup {
                        next_candidates.push((*other, joined));
                    }
                }
                if !next_candidates.is_empty() {
                    let frame = Frame {
                        pattern,
                        tids: tids.clone(),
                        node_index: Some(node_index),
                    };
                    expand(miner, config, nodes, &frame, &next_candidates);
                }
            }
        }

        let root = Frame {
            pattern: Pattern::empty(),
            tids: full,
            node_index: None,
        };
        expand(self, config, &mut nodes, &root, &items);
        PatternForest::new(nodes, n_records)
    }
}

impl FrequentPatternMiner for EclatMiner {
    fn mine(&self, dataset: &Dataset, config: &MinerConfig) -> Vec<FrequentPattern> {
        self.mine_forest(dataset, config)
            .nodes()
            .iter()
            .map(|n| FrequentPattern::new(n.pattern.clone(), n.support))
            .collect()
    }

    fn name(&self) -> &'static str {
        if self.use_diffsets {
            "eclat(diffsets)"
        } else {
            "eclat(tidsets)"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::canonicalize;
    use sigrule_data::{Record, Schema};

    /// 5 records over two binary attributes (items 0..4), as in the data
    /// crate's toy dataset.
    fn toy() -> Dataset {
        let schema = Schema::synthetic(&[2, 2], 2).unwrap();
        let records = vec![
            Record::new(vec![0, 2], 0),
            Record::new(vec![0, 3], 0),
            Record::new(vec![1, 2], 1),
            Record::new(vec![0, 2], 1),
            Record::new(vec![1, 3], 0),
        ];
        Dataset::new(schema, records).unwrap()
    }

    #[test]
    fn mines_all_frequent_patterns_at_min_sup_2() {
        let d = toy();
        let patterns = EclatMiner::default().mine(&d, &MinerConfig::new(2));
        let got = canonicalize(patterns);
        // expected: {0}:3 {1}:2 {2}:3 {3}:2 {0,2}:2
        let expected = canonicalize(vec![
            FrequentPattern::new(Pattern::from_items([0]), 3),
            FrequentPattern::new(Pattern::from_items([1]), 2),
            FrequentPattern::new(Pattern::from_items([2]), 3),
            FrequentPattern::new(Pattern::from_items([3]), 2),
            FrequentPattern::new(Pattern::from_items([0, 2]), 2),
        ]);
        assert_eq!(got, expected);
    }

    #[test]
    fn forest_supports_match_brute_force() {
        let d = toy();
        let forest = EclatMiner::default().mine_forest(&d, &MinerConfig::new(1));
        for node in forest.nodes() {
            assert_eq!(
                node.support,
                d.support(&node.pattern),
                "pattern {:?}",
                node.pattern
            );
        }
        // every node's materialised tids agree with brute force
        for (i, node) in forest.nodes().iter().enumerate() {
            assert_eq!(forest.tids(i).tids(), d.tids_of(&node.pattern).as_slice());
        }
    }

    #[test]
    fn rule_supports_match_brute_force_on_forest() {
        let d = toy();
        let forest = EclatMiner::default().mine_forest(&d, &MinerConfig::new(1));
        let labels = d.class_labels();
        for class in 0..d.n_classes() as u32 {
            let rs = forest.rule_supports(&labels, class);
            for (node, &s) in forest.nodes().iter().zip(rs.iter()) {
                assert_eq!(s, d.rule_support(&node.pattern, class));
            }
        }
    }

    #[test]
    fn diffsets_and_tidsets_variants_mine_identical_patterns() {
        let d = toy();
        let a = canonicalize(EclatMiner::default().mine(&d, &MinerConfig::new(1)));
        let b = canonicalize(EclatMiner::without_diffsets().mine(&d, &MinerConfig::new(1)));
        assert_eq!(a, b);
    }

    #[test]
    fn diffsets_variant_uses_less_cover_memory_on_dense_data() {
        // A dense dataset where most supports exceed half the parent support.
        let schema = Schema::synthetic(&[2, 2, 2, 2], 2).unwrap();
        let mut records = Vec::new();
        for i in 0..40 {
            // items 0,2,4,6 almost always; a little noise
            let a = if i % 10 == 0 { 1 } else { 0 };
            let b = if i % 7 == 0 { 3 } else { 2 };
            records.push(Record::new(vec![a, b, 4, 6], (i % 2) as u32));
        }
        let d = Dataset::new(schema, records).unwrap();
        let with = EclatMiner::default().mine_forest(&d, &MinerConfig::new(5));
        let without = EclatMiner::without_diffsets().mine_forest(&d, &MinerConfig::new(5));
        assert_eq!(with.len(), without.len());
        assert!(with.n_diffsets() > 0);
        assert!(
            with.cover_bytes() < without.cover_bytes(),
            "diffsets should shrink the stored covers: {} vs {}",
            with.cover_bytes(),
            without.cover_bytes()
        );
    }

    #[test]
    fn max_length_caps_pattern_length() {
        let d = toy();
        let patterns = EclatMiner::default().mine(&d, &MinerConfig::new(1).with_max_length(1));
        assert!(patterns.iter().all(|p| p.pattern.len() == 1));
        assert_eq!(patterns.len(), 4);
    }

    #[test]
    fn high_min_sup_yields_nothing() {
        let d = toy();
        let patterns = EclatMiner::default().mine(&d, &MinerConfig::new(10));
        assert!(patterns.is_empty());
    }

    #[test]
    fn reordering_does_not_change_the_result_set() {
        let d = toy();
        let with = canonicalize(
            EclatMiner {
                reorder_items: true,
                ..EclatMiner::default()
            }
            .mine(&d, &MinerConfig::new(1)),
        );
        let without = canonicalize(
            EclatMiner {
                reorder_items: false,
                ..EclatMiner::default()
            }
            .mine(&d, &MinerConfig::new(1)),
        );
        assert_eq!(with, without);
    }
}
