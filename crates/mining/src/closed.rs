//! Closed frequent patterns (Pasquier et al., ICDT 1999).
//!
//! §3 of the paper: "To reduce the number of rules generated, we use only
//! closed frequent patterns as the left-hand side of rules.  A closed frequent
//! pattern is the longest pattern among those patterns that occur in the same
//! set of records as it, and it is unique."
//!
//! Two routes are provided:
//!
//! * [`PatternForest::closed_indices`](crate::forest::PatternForest::closed_indices)
//!   identifies closed patterns from the mined forest using tid-set hashes —
//!   this is what the rule-mining pipeline uses;
//! * [`closed_flags`] works on a plain list of frequent patterns (with
//!   supports only) and is used to cross-check the forest-based result: when
//!   the list contains *all* frequent patterns, a pattern is closed iff no
//!   proper super-pattern in the list has the same support.

use crate::miner::FrequentPattern;
use std::collections::HashMap;

/// Marks which of the given frequent patterns are closed.
///
/// Correct only when `patterns` contains **every** frequent pattern of the
/// dataset at the mining threshold (which is what all miners in this crate
/// return): if a super-pattern with equal support existed but were missing
/// from the list, a non-closed pattern would be mislabelled as closed.
pub fn closed_flags(patterns: &[FrequentPattern]) -> Vec<bool> {
    // Group pattern indices by support; only patterns with equal support can
    // witness each other's non-closedness.
    let mut by_support: HashMap<usize, Vec<usize>> = HashMap::new();
    for (i, fp) in patterns.iter().enumerate() {
        by_support.entry(fp.support).or_default().push(i);
    }
    let mut closed = vec![true; patterns.len()];
    for indices in by_support.values() {
        for &i in indices {
            for &j in indices {
                if i == j {
                    continue;
                }
                let a = &patterns[i].pattern;
                let b = &patterns[j].pattern;
                if a.len() < b.len() && a.is_subset_of(b) {
                    closed[i] = false;
                    break;
                }
            }
        }
    }
    closed
}

/// Returns only the closed patterns from a list of frequent patterns.
pub fn closed_patterns(patterns: &[FrequentPattern]) -> Vec<FrequentPattern> {
    closed_flags(patterns)
        .into_iter()
        .zip(patterns.iter())
        .filter(|(is_closed, _)| *is_closed)
        .map(|(_, fp)| fp.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eclat::EclatMiner;
    use crate::miner::{FrequentPatternMiner, MinerConfig};
    use sigrule_data::{Dataset, Pattern, Record, Schema};

    #[test]
    fn simple_closure_example() {
        // {0} support 3, {0,1} support 3 → {0} is not closed, {0,1} is.
        // {2} support 2 is closed (no equal-support superset).
        let patterns = vec![
            FrequentPattern::new(Pattern::from_items([0]), 3),
            FrequentPattern::new(Pattern::from_items([0, 1]), 3),
            FrequentPattern::new(Pattern::from_items([1]), 4),
            FrequentPattern::new(Pattern::from_items([2]), 2),
        ];
        assert_eq!(closed_flags(&patterns), vec![false, true, true, true]);
        let closed = closed_patterns(&patterns);
        assert_eq!(closed.len(), 3);
    }

    #[test]
    fn equal_support_but_not_subset_stays_closed() {
        let patterns = vec![
            FrequentPattern::new(Pattern::from_items([0]), 3),
            FrequentPattern::new(Pattern::from_items([1]), 3),
        ];
        assert_eq!(closed_flags(&patterns), vec![true, true]);
    }

    #[test]
    fn agrees_with_forest_closed_indices() {
        // A dataset with deliberate redundancy: attribute 1 mirrors attribute 0.
        let schema = Schema::synthetic(&[2, 2, 2], 2).unwrap();
        let mut records = Vec::new();
        for i in 0..30 {
            let a = usize::from(i % 3 == 0);
            let b = a; // mirrored
            let c = usize::from(i % 2 == 0);
            records.push(Record::new(
                vec![
                    schema.item_id(0, a).unwrap(),
                    schema.item_id(1, b).unwrap(),
                    schema.item_id(2, c).unwrap(),
                ],
                (i % 2) as u32,
            ));
        }
        let d = Dataset::new(schema, records).unwrap();
        let miner = EclatMiner::default();
        let config = MinerConfig::new(3);
        let forest = miner.mine_forest(&d, &config);
        let from_forest: std::collections::HashSet<Pattern> = forest
            .closed_indices()
            .into_iter()
            .map(|i| forest.nodes()[i].pattern.clone())
            .collect();

        let flat = miner.mine(&d, &config);
        let from_flags: std::collections::HashSet<Pattern> = closed_patterns(&flat)
            .into_iter()
            .map(|fp| fp.pattern)
            .collect();
        assert_eq!(from_forest, from_flags);
        // Redundancy means strictly fewer closed patterns than frequent ones.
        assert!(from_forest.len() < flat.len());
    }

    #[test]
    fn empty_input() {
        assert!(closed_flags(&[]).is_empty());
        assert!(closed_patterns(&[]).is_empty());
    }
}
