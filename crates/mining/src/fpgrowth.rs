//! FP-growth (Han, Pei & Yin): frequent pattern mining without candidate
//! generation, via recursive conditional FP-trees.

use crate::miner::{FrequentPattern, FrequentPatternMiner, MinerConfig};
use sigrule_data::{Dataset, ItemId, Pattern};
use std::collections::HashMap;

/// FP-growth miner.
#[derive(Debug, Clone, Default)]
pub struct FpGrowthMiner;

/// A node of an FP-tree.
#[derive(Debug)]
struct FpNode {
    item: ItemId,
    count: usize,
    parent: Option<usize>,
    children: HashMap<ItemId, usize>,
}

/// An FP-tree: nodes plus the header table linking every occurrence of each
/// item.
#[derive(Debug, Default)]
struct FpTree {
    nodes: Vec<FpNode>,
    /// item → indices of the nodes carrying that item.
    header: HashMap<ItemId, Vec<usize>>,
    /// root children by item.
    roots: HashMap<ItemId, usize>,
}

impl FpTree {
    /// Inserts one (ordered) transaction with a multiplicity.
    fn insert(&mut self, transaction: &[ItemId], count: usize) {
        let mut current: Option<usize> = None;
        for &item in transaction {
            let child_map = match current {
                Some(idx) => &self.nodes[idx].children,
                None => &self.roots,
            };
            let next = child_map.get(&item).copied();
            let idx = match next {
                Some(idx) => {
                    self.nodes[idx].count += count;
                    idx
                }
                None => {
                    let idx = self.nodes.len();
                    self.nodes.push(FpNode {
                        item,
                        count,
                        parent: current,
                        children: HashMap::new(),
                    });
                    match current {
                        Some(p) => {
                            self.nodes[p].children.insert(item, idx);
                        }
                        None => {
                            self.roots.insert(item, idx);
                        }
                    }
                    self.header.entry(item).or_default().push(idx);
                    idx
                }
            };
            current = Some(idx);
        }
    }

    /// Items present in the tree together with their total counts.
    fn item_counts(&self) -> HashMap<ItemId, usize> {
        let mut counts: HashMap<ItemId, usize> = HashMap::new();
        for (item, nodes) in &self.header {
            let total = nodes.iter().map(|&i| self.nodes[i].count).sum();
            counts.insert(*item, total);
        }
        counts
    }

    /// The conditional pattern base of an item: for every node carrying the
    /// item, the path from its parent up to the root, weighted by the node's
    /// count.
    fn conditional_base(&self, item: ItemId) -> Vec<(Vec<ItemId>, usize)> {
        let mut base = Vec::new();
        if let Some(nodes) = self.header.get(&item) {
            for &idx in nodes {
                let count = self.nodes[idx].count;
                let mut path = Vec::new();
                let mut cur = self.nodes[idx].parent;
                while let Some(p) = cur {
                    path.push(self.nodes[p].item);
                    cur = self.nodes[p].parent;
                }
                path.reverse();
                if !path.is_empty() {
                    base.push((path, count));
                }
            }
        }
        base
    }
}

impl FpGrowthMiner {
    /// Recursive FP-growth over weighted transactions.
    fn grow(
        transactions: &[(Vec<ItemId>, usize)],
        min_sup: usize,
        suffix: &Pattern,
        config: &MinerConfig,
        result: &mut Vec<FrequentPattern>,
    ) {
        // Count items in this (conditional) database.
        let mut counts: HashMap<ItemId, usize> = HashMap::new();
        for (items, count) in transactions {
            for &item in items {
                *counts.entry(item).or_default() += count;
            }
        }
        let mut frequent: Vec<(ItemId, usize)> =
            counts.into_iter().filter(|&(_, c)| c >= min_sup).collect();
        // Deterministic order: by descending count, then by item id.
        frequent.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        if frequent.is_empty() {
            return;
        }
        let rank: HashMap<ItemId, usize> = frequent
            .iter()
            .enumerate()
            .map(|(i, &(item, _))| (item, i))
            .collect();

        // Build the FP-tree with items ordered by rank.
        let mut tree = FpTree::default();
        for (items, count) in transactions {
            let mut filtered: Vec<ItemId> = items
                .iter()
                .copied()
                .filter(|i| rank.contains_key(i))
                .collect();
            filtered.sort_by_key(|i| rank[i]);
            if !filtered.is_empty() {
                tree.insert(&filtered, *count);
            }
        }
        let tree_counts = tree.item_counts();

        // Mine each frequent item, least frequent first.
        for &(item, _) in frequent.iter().rev() {
            let support = tree_counts.get(&item).copied().unwrap_or(0);
            if support < min_sup {
                continue;
            }
            let pattern = suffix.with_item(item);
            if config.exceeds_max_length(pattern.len()) {
                continue;
            }
            result.push(FrequentPattern::new(pattern.clone(), support));
            let base = tree.conditional_base(item);
            if !base.is_empty() {
                Self::grow(&base, min_sup, &pattern, config, result);
            }
        }
    }
}

impl FrequentPatternMiner for FpGrowthMiner {
    fn mine(&self, dataset: &Dataset, config: &MinerConfig) -> Vec<FrequentPattern> {
        let min_sup = config.effective_min_sup();
        let transactions: Vec<(Vec<ItemId>, usize)> = dataset
            .records()
            .iter()
            .map(|r| (r.items().to_vec(), 1usize))
            .collect();
        let mut result = Vec::new();
        Self::grow(
            &transactions,
            min_sup,
            &Pattern::empty(),
            config,
            &mut result,
        );
        result
    }

    fn name(&self) -> &'static str {
        "fp-growth"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::AprioriMiner;
    use crate::miner::canonicalize;
    use sigrule_data::{Record, Schema};

    fn toy() -> Dataset {
        let schema = Schema::synthetic(&[2, 2], 2).unwrap();
        let records = vec![
            Record::new(vec![0, 2], 0),
            Record::new(vec![0, 3], 0),
            Record::new(vec![1, 2], 1),
            Record::new(vec![0, 2], 1),
            Record::new(vec![1, 3], 0),
        ];
        Dataset::new(schema, records).unwrap()
    }

    #[test]
    fn matches_apriori_on_toy_data() {
        let d = toy();
        for min_sup in 1..=3 {
            let fp = canonicalize(FpGrowthMiner.mine(&d, &MinerConfig::new(min_sup)));
            let ap = canonicalize(AprioriMiner.mine(&d, &MinerConfig::new(min_sup)));
            assert_eq!(fp, ap, "min_sup={min_sup}");
        }
    }

    #[test]
    fn supports_are_exact() {
        let d = toy();
        for fp in FpGrowthMiner.mine(&d, &MinerConfig::new(1)) {
            assert_eq!(fp.support, d.support(&fp.pattern));
        }
    }

    #[test]
    fn classic_fp_growth_example() {
        // The example from the FP-growth paper (5 transactions over items
        // 0..=5 here), min_sup = 3.
        let schema = Schema::synthetic(&[2, 2, 2, 2, 2, 2], 2).unwrap();
        // We encode presence/absence: item 2a = "present" for attribute a.
        // Simpler: use 6 binary attributes and set "present" = value 0.
        // Transactions (by attribute index): {0,1,2}, {0,1,3}, {0,4}, {1,5}, {0,1,2}
        let t = |present: &[usize]| {
            let items: Vec<u32> = (0..6)
                .map(|a| {
                    let value = usize::from(!present.contains(&a));
                    schema.item_id(a, value).unwrap()
                })
                .collect();
            items
        };
        let records = vec![
            Record::new(t(&[0, 1, 2]), 0),
            Record::new(t(&[0, 1, 3]), 0),
            Record::new(t(&[0, 4]), 1),
            Record::new(t(&[1, 5]), 1),
            Record::new(t(&[0, 1, 2]), 0),
        ];
        let d = Dataset::new(schema, records).unwrap();
        let fp = canonicalize(FpGrowthMiner.mine(&d, &MinerConfig::new(3)));
        let ap = canonicalize(AprioriMiner.mine(&d, &MinerConfig::new(3)));
        assert_eq!(fp, ap);
        assert!(!fp.is_empty());
    }

    #[test]
    fn max_length_is_respected() {
        let d = toy();
        let patterns = FpGrowthMiner.mine(&d, &MinerConfig::new(1).with_max_length(1));
        assert!(patterns.iter().all(|p| p.pattern.len() <= 1));
    }

    #[test]
    fn nothing_frequent_returns_empty() {
        let d = toy();
        assert!(FpGrowthMiner.mine(&d, &MinerConfig::new(50)).is_empty());
    }
}
