//! The pattern forest: frequent patterns arranged in their set-enumeration
//! tree, with Diffset-encoded covers and parent links.
//!
//! This is the structure §4.2.1–4.2.2 of the paper builds once on the
//! original dataset and then reuses on every permutation:
//!
//! * patterns are mined **once**; their record id lists (tid-sets) never
//!   change across permutations because only class labels are shuffled;
//! * each node stores either its full tid-set or its Diffset relative to its
//!   parent, whichever is smaller (the `supp(X) ≤ supp(parent)/2` rule);
//! * the support of a rule `X ⇒ c` on a permutation is recomputed from the
//!   parent's rule support and the node's cover in a single pass over the
//!   forest in depth-first (parent-before-child) order.
//!
//! Two counting kernels implement that pass.  The original tid-list kernel
//! ([`PatternForest::rule_supports`]) loads one label per stored id.  The
//! bitset kernel packs each cover into a [`Bitmap`] **once** (covers never
//! change across permutations) and counts `AND` + popcount against a
//! per-class label bitmap rebuilt per permutation.  A [`SupportPlan`] decides
//! per node which kernel to use ([`SupportBackend::Auto`] picks the bitmap
//! whenever the stored list is denser than one id per 64 records, the point
//! where the word sweep touches less memory than the id walk) and caches the
//! packed bitmaps, so the per-permutation pass
//! ([`PatternForest::rule_supports_planned`]) allocates nothing.

use sigrule_data::{
    Bitmap, ClassBitmaps, ClassId, ClassLaneBlocks, Cover, LaneBlock, Pattern, TidSet,
};

/// One frequent pattern in the forest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternNode {
    /// The pattern.
    pub pattern: Pattern,
    /// Its support (`supp(X)`), i.e. its coverage when used as a rule LHS.
    pub support: usize,
    /// Index of the parent node in the forest, or `None` when the parent is
    /// the (virtual) empty pattern covering every record.
    pub parent: Option<usize>,
    /// The stored cover: full tid-set or Diffset relative to the parent.
    pub cover: Cover,
    /// Hash of the pattern's tid-set; two nodes with equal support and equal
    /// hash almost surely cover the same records (used for closed-pattern
    /// grouping).
    pub tid_hash: u64,
}

/// Frequent patterns arranged in parent-before-child order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternForest {
    nodes: Vec<PatternNode>,
    n_records: usize,
}

impl PatternForest {
    /// Assembles a forest from nodes already in parent-before-child order.
    ///
    /// # Panics
    ///
    /// Panics if a node references a parent at or after its own position.
    pub fn new(nodes: Vec<PatternNode>, n_records: usize) -> Self {
        for (i, node) in nodes.iter().enumerate() {
            if let Some(p) = node.parent {
                assert!(
                    p < i,
                    "node {i} references parent {p} that does not precede it"
                );
            }
        }
        PatternForest { nodes, n_records }
    }

    /// The nodes, in parent-before-child order.
    pub fn nodes(&self) -> &[PatternNode] {
        &self.nodes
    }

    /// Number of patterns in the forest.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the forest holds no patterns.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of records of the dataset the forest was mined from.
    pub fn n_records(&self) -> usize {
        self.n_records
    }

    /// Materialises the full tid-set of a node by walking up to the nearest
    /// ancestor stored as a full tid-set.
    pub fn tids(&self, index: usize) -> TidSet {
        let node = &self.nodes[index];
        match &node.cover {
            Cover::Tids(t) => t.clone(),
            Cover::Diffset(_) => {
                let parent_tids = match node.parent {
                    Some(p) => self.tids(p),
                    None => TidSet::full(self.n_records),
                };
                node.cover.materialize(&parent_tids)
            }
        }
    }

    /// Computes `supp(X ⇒ c)` for **every** node in one pass, given the class
    /// label of every record (indexed by tid) and the class of interest.
    ///
    /// This is the inner loop of the permutation approach: `labels` changes on
    /// every permutation, the forest does not.
    pub fn rule_supports(&self, labels: &[ClassId], class: ClassId) -> Vec<usize> {
        assert_eq!(
            labels.len(),
            self.n_records,
            "label vector length must match the mined dataset"
        );
        let class_total = labels.iter().filter(|&&c| c == class).count();
        let mut out = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let parent_rule_support = match node.parent {
                Some(p) => out[p],
                None => class_total,
            };
            out.push(node.cover.rule_support(parent_rule_support, labels, class));
        }
        out
    }

    /// Computes `supp(X ⇒ c)` for every node like
    /// [`rule_supports`](PatternForest::rule_supports), but through a
    /// [`SupportPlan`]: nodes the plan packed into bitmaps are counted with
    /// the word-wise `AND` + popcount kernel against `class_bits`, the rest
    /// walk their stored tid-list over `labels`.  Appends into `out` (cleared
    /// first) so the permutation hot loop reuses one allocation.
    ///
    /// `class_bits` must be the bitmap of exactly the records whose label in
    /// `labels` equals `class`; both kernels then count the same sets, so the
    /// result is identical to [`rule_supports`](PatternForest::rule_supports)
    /// whatever the plan selected.  A plan with no bitmap nodes (see
    /// [`SupportPlan::needs_class_bitmaps`]) accepts `None` and skips the
    /// label-bitmap machinery entirely.
    ///
    /// # Panics
    ///
    /// Panics if the plan contains bitmap-kernel nodes but `class_bits` is
    /// `None`.
    pub fn rule_supports_planned(
        &self,
        plan: &SupportPlan,
        labels: &[ClassId],
        class_bits: Option<&Bitmap>,
        class: ClassId,
        out: &mut Vec<usize>,
    ) {
        assert_eq!(
            labels.len(),
            self.n_records,
            "label vector length must match the mined dataset"
        );
        assert_eq!(
            plan.bitmaps.len(),
            self.nodes.len(),
            "support plan was built for a different forest"
        );
        let class_total = match class_bits {
            Some(bits) => bits.count_ones(),
            None => labels.iter().filter(|&&c| c == class).count(),
        };
        out.clear();
        out.reserve(self.nodes.len());
        for (node, stored_bits) in self.nodes.iter().zip(plan.bitmaps.iter()) {
            let parent_rule_support = match node.parent {
                Some(p) => out[p],
                None => class_total,
            };
            let support = match stored_bits {
                Some(bits) => {
                    let class_bits =
                        class_bits.expect("a plan with bitmap nodes needs the class bitmap");
                    node.cover
                        .rule_support_bitmap(parent_rule_support, bits, class_bits)
                }
                None => node.cover.rule_support(parent_rule_support, labels, class),
            };
            out.push(support);
        }
    }

    /// Computes `supp(X ⇒ c)` for every node and every permutation *lane* of
    /// a transposed class block in one batched pass: the lane-blocked
    /// counterpart of calling
    /// [`rule_supports_planned`](PatternForest::rule_supports_planned) once
    /// per permutation.
    ///
    /// `class_block` holds one label bitmap per permutation lane for a single
    /// class (see [`ClassLaneBlocks`]).  Bitmap-kernel nodes sweep their
    /// packed cover against all lanes at once
    /// ([`LaneBlock::and_count_per_lane`]); tid-list nodes count membership
    /// of their stored ids across all lanes
    /// ([`LaneBlock::tid_hits_per_lane`]) — no per-permutation label-array
    /// walks at all.  Results land node-major in `out`
    /// (`out[node * lanes + lane]`), cleared and resized first.
    ///
    /// Every count is an exact integer computed from the same sets as the
    /// per-permutation pass, so each lane of the output is bit-identical to
    /// [`rule_supports_planned`](PatternForest::rule_supports_planned) on
    /// that permutation's labels.
    ///
    /// # Panics
    ///
    /// Panics if the plan or block dimensions do not match the forest.
    pub fn rule_supports_planned_block(
        &self,
        plan: &SupportPlan,
        class_block: &LaneBlock,
        out: &mut Vec<u32>,
    ) {
        assert_eq!(
            plan.bitmaps.len(),
            self.nodes.len(),
            "support plan was built for a different forest"
        );
        assert_eq!(
            class_block.n_bits(),
            self.n_records,
            "class block must cover the mined dataset's records"
        );
        let lanes = class_block.lanes();
        out.clear();
        out.resize(self.nodes.len() * lanes, 0);
        if lanes == 0 {
            return;
        }
        let mut class_total = vec![0u32; lanes];
        class_block.count_ones_per_lane(&mut class_total);
        let mut hits = vec![0u32; lanes];
        for (i, (node, stored_bits)) in self.nodes.iter().zip(plan.bitmaps.iter()).enumerate() {
            match stored_bits {
                Some(bits) => class_block.and_count_per_lane(bits, &mut hits),
                None => class_block.tid_hits_per_lane(node.cover.stored_tids().tids(), &mut hits),
            }
            let diffset = node.cover.is_diffset();
            for lane in 0..lanes {
                let parent_rule_support = match node.parent {
                    Some(p) => out[p * lanes + lane],
                    None => class_total[lane],
                };
                out[i * lanes + lane] = if diffset {
                    parent_rule_support - hits[lane]
                } else {
                    hits[lane]
                };
            }
        }
    }

    /// Builds the per-node counting plan for the permutation engine: packs
    /// the covers selected by `backend` into bitmaps (a one-off cost reused
    /// by every permutation) and leaves the rest on the tid-list kernel.
    pub fn support_plan(&self, backend: SupportBackend) -> SupportPlan {
        let bitmaps = self
            .nodes
            .iter()
            .map(|node| {
                let use_bitmap = match backend {
                    SupportBackend::TidLists => false,
                    SupportBackend::Bitmaps => true,
                    // Break-even: the bitmap sweep reads n/64 words, the
                    // tid-list walk reads stored_len labels.
                    SupportBackend::Auto => node.cover.stored_len() * 64 >= self.n_records,
                };
                use_bitmap.then(|| node.cover.stored_bitmap(self.n_records))
            })
            .collect();
        SupportPlan {
            bitmaps,
            n_records: self.n_records,
        }
    }

    /// The supports (`supp(X)`) of all nodes, in forest order.
    pub fn supports(&self) -> Vec<usize> {
        self.nodes.iter().map(|n| n.support).collect()
    }

    /// Total bytes used by the stored covers — the quantity the Diffsets
    /// technique reduces (§4.2.2).
    pub fn cover_bytes(&self) -> usize {
        self.nodes.iter().map(|n| n.cover.size_bytes()).sum()
    }

    /// Number of nodes whose cover is stored as a Diffset.
    pub fn n_diffsets(&self) -> usize {
        self.nodes.iter().filter(|n| n.cover.is_diffset()).count()
    }

    /// Approximate resident bytes of the forest: the node array plus every
    /// node's pattern items and stored cover.  An estimate (allocator
    /// overhead and capacity slack are not counted) used by the byte-budget
    /// cache accounting of the engine/registry layers.
    pub fn approx_bytes(&self) -> usize {
        let nodes = self.nodes.len() * std::mem::size_of::<PatternNode>();
        let heap: usize = self
            .nodes
            .iter()
            .map(|n| std::mem::size_of_val(n.pattern.items()) + n.cover.size_bytes())
            .sum();
        nodes + heap
    }

    /// Indices of the nodes whose pattern is *closed*: no super-pattern in the
    /// forest covers exactly the same records (§3 of the paper; Pasquier et
    /// al.).
    ///
    /// Nodes are grouped by `(support, tid_hash)`; within a group the closed
    /// pattern is the union of the group's patterns, so a node is closed iff
    /// its pattern equals that union.
    pub fn closed_indices(&self) -> Vec<usize> {
        use std::collections::HashMap;
        let mut groups: HashMap<(usize, u64), Vec<usize>> = HashMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            groups
                .entry((node.support, node.tid_hash))
                .or_default()
                .push(i);
        }
        let mut closed = Vec::new();
        for indices in groups.values() {
            let mut union = Pattern::empty();
            for &i in indices {
                union = union.union(&self.nodes[i].pattern);
            }
            for &i in indices {
                if self.nodes[i].pattern == union {
                    closed.push(i);
                }
            }
        }
        closed.sort_unstable();
        closed
    }
}

/// Which counting kernel the permutation engine uses per forest node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SupportBackend {
    /// Pick per node by density: bitmap when the stored id list has more
    /// than one id per 64 records, tid-list below that.
    #[default]
    Auto,
    /// Tid-list walking for every node (the paper's §4.2.2 layout; the
    /// baseline axis of the engine ablation).
    TidLists,
    /// Packed bitmaps for every node.
    Bitmaps,
}

/// The per-node kernel selection of [`PatternForest::support_plan`] plus the
/// packed cover bitmaps it chose to build.  Built once per mined forest;
/// immutable and shareable across permutation workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupportPlan {
    /// `Some(bitmap of the stored id list)` for bitmap-kernel nodes.
    bitmaps: Vec<Option<Bitmap>>,
    n_records: usize,
}

impl SupportPlan {
    /// Number of nodes counted with the bitmap kernel.
    pub fn n_bitmap_nodes(&self) -> usize {
        self.bitmaps.iter().filter(|b| b.is_some()).count()
    }

    /// True when at least one node needs the per-class label bitmaps; a
    /// counting pass over a plan without any may pass `None` for the class
    /// bitmap and skip building them altogether.
    pub fn needs_class_bitmaps(&self) -> bool {
        self.bitmaps.iter().any(Option::is_some)
    }

    /// Bytes held by the packed cover bitmaps.
    pub fn bitmap_bytes(&self) -> usize {
        self.bitmaps.iter().flatten().map(Bitmap::size_bytes).sum()
    }

    /// Allocates the per-class label bitmaps a counting pass over this plan
    /// uses; the permutation engine keeps one per worker and re-fills it per
    /// permutation.
    pub fn make_class_bitmaps(&self, n_classes: usize) -> ClassBitmaps {
        ClassBitmaps::new(n_classes, self.n_records)
    }

    /// True when the batched (lane-blocked) permutation path is worth
    /// taking for this plan: any bitmap-kernel node profits directly from
    /// the one-pass cover sweep, and the transposed fill then amortises
    /// over the whole chunk.  Pure tid-list plans (the paper's §4.2.2
    /// ablation axis) stay on the per-permutation path so the TidLists
    /// backend keeps measuring exactly the engine the paper describes.
    pub fn prefers_batched(&self) -> bool {
        self.needs_class_bitmaps()
    }

    /// Allocates the per-class lane blocks the batched counting pass uses
    /// (one lane per permutation of a chunk); the permutation engine keeps
    /// one set per worker and re-fills it per chunk.
    pub fn make_class_lane_blocks(&self, n_classes: usize, lanes: usize) -> ClassLaneBlocks {
        ClassLaneBlocks::new(n_classes, lanes, self.n_records)
    }
}

/// Hashes a tid-set with FxHash-style mixing; collisions at equal support are
/// astronomically unlikely and only affect which pattern is reported as the
/// closed representative.
pub fn hash_tids(tids: &TidSet) -> u64 {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    for &t in tids.tids() {
        h ^= t as u64;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
    }
    h ^= tids.len() as u64;
    h.wrapping_mul(0xc4ce_b9fe_1a85_ec53)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built forest over a 6-record dataset.
    ///
    /// labels: [0, 0, 1, 1, 0, 1]
    /// item a covers {0,1,2,3}   (support 4)
    /// item b covers {2,3,4,5}   (support 4)
    /// {a,b} covers {2,3}        (support 2)
    fn toy_forest() -> (PatternForest, Vec<ClassId>) {
        let labels = vec![0, 0, 1, 1, 0, 1];
        let a_tids = TidSet::from_tids([0, 1, 2, 3]);
        let b_tids = TidSet::from_tids([2, 3, 4, 5]);
        let ab_tids = TidSet::from_tids([2, 3]);
        let full = TidSet::full(6);
        let nodes = vec![
            PatternNode {
                pattern: Pattern::from_items([0]),
                support: 4,
                parent: None,
                cover: Cover::choose(&full, a_tids.clone()),
                tid_hash: hash_tids(&a_tids),
            },
            PatternNode {
                pattern: Pattern::from_items([0, 1]),
                support: 2,
                parent: Some(0),
                cover: Cover::choose(&a_tids, ab_tids.clone()),
                tid_hash: hash_tids(&ab_tids),
            },
            PatternNode {
                pattern: Pattern::from_items([1]),
                support: 4,
                parent: None,
                cover: Cover::choose(&full, b_tids.clone()),
                tid_hash: hash_tids(&b_tids),
            },
        ];
        (PatternForest::new(nodes, 6), labels)
    }

    #[test]
    fn rule_supports_match_direct_counting() {
        let (forest, labels) = toy_forest();
        // class 1 appears in records {2,3,5}
        let rs = forest.rule_supports(&labels, 1);
        assert_eq!(rs, vec![2, 2, 3]);
        let rs0 = forest.rule_supports(&labels, 0);
        assert_eq!(rs0, vec![2, 0, 1]);
    }

    #[test]
    fn planned_counting_matches_unplanned_for_every_backend() {
        let (forest, labels) = toy_forest();
        let bitmaps = ClassBitmaps::from_labels(&labels, 2);
        for backend in [
            SupportBackend::TidLists,
            SupportBackend::Bitmaps,
            SupportBackend::Auto,
        ] {
            let plan = forest.support_plan(backend);
            match backend {
                SupportBackend::TidLists => {
                    assert_eq!(plan.n_bitmap_nodes(), 0);
                    assert!(!plan.needs_class_bitmaps());
                    assert_eq!(plan.bitmap_bytes(), 0);
                }
                SupportBackend::Bitmaps => {
                    assert_eq!(plan.n_bitmap_nodes(), forest.len());
                    assert!(plan.needs_class_bitmaps());
                    assert!(plan.bitmap_bytes() > 0);
                }
                SupportBackend::Auto => {}
            }
            for class in 0..2u32 {
                let expected = forest.rule_supports(&labels, class);
                let mut out = Vec::new();
                forest.rule_supports_planned(
                    &plan,
                    &labels,
                    Some(bitmaps.class(class)),
                    class,
                    &mut out,
                );
                assert_eq!(out, expected, "backend {backend:?} class {class}");
                // A plan without bitmap nodes also counts without any class
                // bitmap at all.
                if !plan.needs_class_bitmaps() {
                    forest.rule_supports_planned(&plan, &labels, None, class, &mut out);
                    assert_eq!(out, expected, "backend {backend:?} class {class} (None)");
                }
            }
        }
    }

    #[test]
    fn batched_block_counting_matches_per_perm_for_every_backend() {
        let (forest, labels) = toy_forest();
        // Three "permutations": the original labels plus two rotations.
        let lanes = 3;
        let n = labels.len();
        let mut flat: Vec<ClassId> = Vec::with_capacity(lanes * n);
        for lane in 0..lanes {
            for t in 0..n {
                flat.push(labels[(t + lane) % n]);
            }
        }
        for backend in [
            SupportBackend::TidLists,
            SupportBackend::Bitmaps,
            SupportBackend::Auto,
        ] {
            let plan = forest.support_plan(backend);
            assert_eq!(plan.prefers_batched(), plan.needs_class_bitmaps());
            let mut blocks = plan.make_class_lane_blocks(2, lanes);
            blocks.fill(&flat);
            let mut block_out = Vec::new();
            let mut perm_out = Vec::new();
            for class in 0..2u32 {
                forest.rule_supports_planned_block(&plan, blocks.class(class), &mut block_out);
                assert_eq!(block_out.len(), forest.len() * lanes);
                for lane in 0..lanes {
                    let lane_labels = &flat[lane * n..(lane + 1) * n];
                    let bitmaps = ClassBitmaps::from_labels(lane_labels, 2);
                    forest.rule_supports_planned(
                        &plan,
                        lane_labels,
                        Some(bitmaps.class(class)),
                        class,
                        &mut perm_out,
                    );
                    for node in 0..forest.len() {
                        assert_eq!(
                            block_out[node * lanes + lane] as usize,
                            perm_out[node],
                            "backend {backend:?} class {class} lane {lane} node {node}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tids_materialisation() {
        let (forest, _) = toy_forest();
        assert_eq!(forest.tids(0).tids(), &[0, 1, 2, 3]);
        assert_eq!(forest.tids(1).tids(), &[2, 3]);
        assert_eq!(forest.tids(2).tids(), &[2, 3, 4, 5]);
    }

    #[test]
    fn diffset_chosen_when_support_is_large() {
        let (forest, _) = toy_forest();
        // item a: support 4 > 6/2 = 3 → diffset; {a,b}: support 2 <= 4/2 → tids
        assert!(forest.nodes()[0].cover.is_diffset());
        assert!(!forest.nodes()[1].cover.is_diffset());
        assert_eq!(forest.n_diffsets(), 2);
        assert!(forest.cover_bytes() > 0);
    }

    #[test]
    fn closed_indices_on_toy_forest() {
        let (forest, _) = toy_forest();
        // All three patterns cover distinct record sets, so all are closed.
        assert_eq!(forest.closed_indices(), vec![0, 1, 2]);
    }

    #[test]
    fn closed_indices_collapse_equal_covers() {
        // Two patterns with identical tid-sets: only the longer is closed.
        let tids = TidSet::from_tids([0, 1, 2]);
        let full = TidSet::full(5);
        let nodes = vec![
            PatternNode {
                pattern: Pattern::from_items([0]),
                support: 3,
                parent: None,
                cover: Cover::choose(&full, tids.clone()),
                tid_hash: hash_tids(&tids),
            },
            PatternNode {
                pattern: Pattern::from_items([0, 1]),
                support: 3,
                parent: Some(0),
                cover: Cover::choose(&tids, tids.clone()),
                tid_hash: hash_tids(&tids),
            },
        ];
        let forest = PatternForest::new(nodes, 5);
        assert_eq!(forest.closed_indices(), vec![1]);
    }

    #[test]
    #[should_panic(expected = "does not precede")]
    fn forward_parent_reference_panics() {
        let tids = TidSet::from_tids([0]);
        let node = PatternNode {
            pattern: Pattern::from_items([0]),
            support: 1,
            parent: Some(5),
            cover: Cover::Tids(tids.clone()),
            tid_hash: hash_tids(&tids),
        };
        let _ = PatternForest::new(vec![node], 3);
    }

    #[test]
    fn hash_tids_discriminates() {
        let a = TidSet::from_tids([1, 2, 3]);
        let b = TidSet::from_tids([1, 2, 4]);
        let c = TidSet::from_tids([1, 2, 3]);
        assert_eq!(hash_tids(&a), hash_tids(&c));
        assert_ne!(hash_tids(&a), hash_tids(&b));
        assert_ne!(hash_tids(&TidSet::empty()), hash_tids(&a));
    }

    #[test]
    fn empty_forest() {
        let f = PatternForest::new(vec![], 10);
        assert!(f.is_empty());
        assert_eq!(f.len(), 0);
        assert_eq!(f.rule_supports(&[0; 10], 0), Vec::<usize>::new());
        assert_eq!(f.closed_indices(), Vec::<usize>::new());
    }
}
