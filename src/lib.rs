//! Umbrella crate for the reproduction of *Controlling False Positives in
//! Association Rule Mining* (Liu, Zhang, Wong, PVLDB 5(2), 2011).
//!
//! This crate only re-exports the workspace members so the examples and the
//! cross-crate integration tests have a single dependency to pull in.  The
//! functionality lives in:
//!
//! * [`stats`] — Fisher's exact test, multiple-testing corrections, p-value
//!   buffering;
//! * [`data`] — datasets, vertical layouts, discretization, UCI emulators;
//! * [`mining`] — Apriori, Eclat/dEclat, FP-growth, closed patterns;
//! * [`synth`] — the Table 1 synthetic data generator;
//! * [`core`] — class association rules and the three correction approaches;
//! * [`eval`] — the paper's evaluation methodology, every figure/table, and
//!   the `sigrule eval` planted-truth sweep harness;
//! * [`server`] — the multi-dataset engine registry (byte-budget LRU cache
//!   eviction) and the concurrent stdin/TCP/Unix-socket serve transports;
//! * [`obs`] — the unified observability layer: metrics registry with
//!   Prometheus/JSON exposition, structured JSON-lines logging, and
//!   cross-worker trace propagation (docs/OBSERVABILITY.md).

#![deny(missing_docs)]

pub use sigrule as core;
pub use sigrule_data as data;
pub use sigrule_eval as eval;
pub use sigrule_mining as mining;
pub use sigrule_obs as obs;
pub use sigrule_server as server;
pub use sigrule_stats as stats;
pub use sigrule_synth as synth;

/// Frequently used items, for `use sigrule_repro::prelude::*`.
pub mod prelude {
    pub use sigrule::correction::holdout::{holdout_from_parts, random_holdout};
    pub use sigrule::correction::permutation::{
        BatchPolicy, BufferStrategy, ExecutionMode, PermutationCorrection, PermutationStats,
        SupportBackend,
    };
    pub use sigrule::correction::{
        direct, no_correction, Correction, CorrectionContext, CorrectionResult, DirectAdjustment,
        ErrorMetric, PermutationApproach, RandomHoldout, Uncorrected,
    };
    pub use sigrule::engine::{
        CacheEntry, CacheEntryKind, Engine, EngineStats, LoadedSource, Loader, Query, QueryOutcome,
        QueryTimings,
    };
    pub use sigrule::pipeline::{CorrectionApproach, Pipeline, PipelineError, PipelineRun};
    pub use sigrule::{
        mine_rules, mine_rules_with_vertical, CancelReason, CancelToken, Cancelled, ClassRule,
        MinedRuleSet, RuleMiningConfig,
    };
    pub use sigrule_data::kernel::{KernelCounters, KernelKind};
    pub use sigrule_data::loader::{
        dataset_to_baskets, dataset_to_csv, detect_format, detect_format_with, load_baskets_file,
        load_baskets_str, load_csv_file, load_csv_str, BasketLoad, BasketOptions, LoadOptions,
    };
    pub use sigrule_data::{
        Dataset, InputFormat, ItemProvenance, ItemSpace, Pattern, Record, Schema,
    };
    pub use sigrule_eval::{
        evaluate, resolve_truth, score_result, Method, MethodRunner, PreparedDataset, SweepGrid,
        SweepReport, SweepRunner,
    };
    pub use sigrule_server::{
        ClientStream, EngineRegistry, ListenAddr, RegistrySnapshot, ServerConfig, ServerState,
    };
    pub use sigrule_stats::{FisherTest, RuleCounts, Tail};
    pub use sigrule_synth::{BasketGenerator, BasketParams, SyntheticGenerator, SyntheticParams};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_importable() {
        use crate::prelude::*;
        let params = SyntheticParams::default()
            .with_records(100)
            .with_attributes(5);
        let (d, _) = SyntheticGenerator::new(params).unwrap().generate(1);
        let mined = mine_rules(&d, &RuleMiningConfig::new(20));
        let _ = no_correction(&mined, 0.05);
    }
}
